"""Table 3: ParHDE vs the prior parallel HDE implementation, s = 10.

The paper measures 2.9x-18x on 80 cores of the large-memory node, with
speedup correlated to graph size and road_usa the weakest case (its
high diameter defeats the direction-optimizing parallel BFS, so the
prior sequential BFS is not much worse).  We reproduce winners and
ordering; magnitudes are larger because the model's ESM node scales more
cleanly than the paper's shared, non-dedicated allocation (see
EXPERIMENTS.md).
"""

from repro import datasets, parhde
from repro.baselines import parhde_peak_bytes, prior_hde, prior_peak_bytes
from repro.parallel import BRIDGES_ESM

from conftest import BENCH_SCALE, load_cached

S = 10
CORES = 80
PAPER = {  # graph -> (ParHDE s, prior s, speedup)
    "urand27": (72, 1301, 18.0),
    "kron27": (47, 688, 14.7),
    "sk-2005": (18, 131, 7.3),
    "twitter7": (34, 372, 10.9),
    "road_usa": (13, 36, 2.9),
}


def _run_all():
    rows = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        ours = parhde(g, S, seed=0)
        prior = prior_hde(g, S, seed=0)
        rows[g.name] = (g, ours, prior)
    return rows


def test_table3_speedup_over_prior(benchmark, report):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<18} {'ParHDE(s)':>12} {'Prior(s)':>12} {'Speedup':>9}"
        f" {'paper':>7} {'mem x':>6}",
        "-" * 70,
    ]
    ratios = {}
    for name, (g, ours, prior) in rows.items():
        t_ours = ours.simulated_seconds(BRIDGES_ESM, CORES)
        t_prior = prior.simulated_seconds(BRIDGES_ESM, CORES)
        ratio = t_prior / t_ours
        paper_name = name.split("[")[0]
        ratios[paper_name] = ratio
        mem = prior_peak_bytes(g, S) / parhde_peak_bytes(g, S)
        lines.append(
            f"{name:<18} {t_ours:>12.4f} {t_prior:>12.4f} {ratio:>8.1f}x"
            f" {PAPER[paper_name][2]:>6.1f}x {mem:>5.2f}x"
        )
    report("table3_prior", "\n".join(lines))

    # road_usa shows by far the smallest gain (paper: 2.9x vs 7.3-18x).
    others = [v for k, v in ratios.items() if k != "road_usa"]
    assert ratios["road_usa"] < min(others) / 3
    if BENCH_SCALE == "medium":
        # Calibration-scale claims: ParHDE wins everywhere, and the
        # low-diameter graphs gain an order of magnitude.  (At smaller
        # scales road's per-level barriers can dominate its tiny
        # traversals, flipping its ratio below 1 — a scale artifact.)
        assert all(r > 1.0 for r in ratios.values())
        assert min(others) > 10
    else:
        assert min(others) > 3
