"""Serving-layer throughput: mixed hot/cold request stream replay.

Replays a deterministic request stream through a fresh
:class:`~repro.service.engine.LayoutEngine` from several concurrent
client threads.  The stream mixes *hot* fingerprints (a small working
set that should be served from cache after first touch) with *cold*
ones (unique seeds, always computed), the shape of real serving traffic.
Reports requests/sec, hit rate and latency percentiles into
``benchmarks/results/service_throughput.txt``.

Unlike the table/figure benchmarks this measures the serving subsystem
itself, so it always runs at a small graph scale — the quantity under
test is engine overhead (cache, dedup, admission), not layout time.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import LayoutCache, LayoutEngine, LayoutRequest

from conftest import load_cached

# Deterministic mixed stream: 3 hot request shapes, 20% cold traffic.
HOT_GRAPHS = ("barth", "ecology", "cage")
N_REQUESTS = 160
COLD_EVERY = 5  # every 5th request is a cold (unique) fingerprint
CLIENTS = 8


def _stream() -> list[LayoutRequest]:
    requests = []
    for i in range(N_REQUESTS):
        if i % COLD_EVERY == 0:
            # Cold: unique algorithm seed -> unique fingerprint.
            requests.append(
                LayoutRequest(
                    graph=HOT_GRAPHS[i % len(HOT_GRAPHS)],
                    scale="tiny",
                    s=6,
                    seed=1000 + i,
                )
            )
        else:
            requests.append(
                LayoutRequest(
                    graph=HOT_GRAPHS[i % len(HOT_GRAPHS)],
                    scale="tiny",
                    s=6,
                    seed=0,
                )
            )
    return requests


def _replay() -> dict:
    graphs = {name: load_cached(name, "tiny") for name in HOT_GRAPHS}
    engine = LayoutEngine(
        cache=LayoutCache(max_bytes=64 * 1024 * 1024),
        workers=4,
        queue_limit=64,
        timeout=120,
        graph_loader=lambda name, scale, seed: graphs[name],
    )
    stream = _stream()
    cursor = {"next": 0}
    lock = threading.Lock()
    statuses: list[str] = []

    def client():
        while True:
            with lock:
                i = cursor["next"]
                if i >= len(stream):
                    return
                cursor["next"] = i + 1
            response = engine.submit(stream[i])
            with lock:
                statuses.append(response.status)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    snap = engine.stats()
    engine.close()
    hits = sum(1 for s in statuses if s.endswith("-hit"))
    return {
        "wall": wall,
        "rps": len(stream) / wall,
        "hit_rate": hits / len(stream),
        "statuses": {s: statuses.count(s) for s in sorted(set(statuses))},
        "latency": snap["histograms"]["latency_seconds"],
        "compute": snap["histograms"]["compute_seconds"],
    }


def test_service_throughput(benchmark, report):
    stats = benchmark.pedantic(_replay, rounds=1, iterations=1)
    assert stats["hit_rate"] > 0.5, "hot traffic should mostly hit the cache"

    lat = stats["latency"]
    lines = [
        f"{'requests':<22} {N_REQUESTS}",
        f"{'client threads':<22} {CLIENTS}",
        f"{'workers':<22} 4",
        f"{'hot graphs':<22} {', '.join(HOT_GRAPHS)}",
        f"{'cold share':<22} 1/{COLD_EVERY}",
        "",
        f"{'wall seconds':<22} {stats['wall']:.3f}",
        f"{'requests/sec':<22} {stats['rps']:.1f}",
        f"{'cache hit rate':<22} {stats['hit_rate'] * 100:.1f}%",
        f"{'status mix':<22} {stats['statuses']}",
        "",
        f"{'latency p50':<22} {lat['p50'] * 1000:.2f} ms",
        f"{'latency p95':<22} {lat['p95'] * 1000:.2f} ms",
        f"{'latency p99':<22} {lat['p99'] * 1000:.2f} ms",
        f"{'compute p50':<22} {stats['compute']['p50'] * 1000:.2f} ms",
    ]
    report("service_throughput", "\n".join(lines))
