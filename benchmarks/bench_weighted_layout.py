"""Weighted-graph layout evaluation (section 3.3 end to end).

The paper's weighted experiments stop at SSSP timing; this bench closes
the loop on the *layout*: ParHDE on unit, random-integer and real
weights, under both weight interpretations, checked for quality (finite,
2D, better than random placement) and for the expected traversal-cost
ordering (weighted Delta-stepping costs more than unweighted BFS).
"""

import numpy as np

from repro import parhde
from repro.graph import (
    random_integer_weights,
    random_real_weights,
    unit_weights,
)
from repro.metrics import sampled_stress
from repro.parallel import BRIDGES_RSM

from conftest import load_cached


def _run():
    g = load_cached("barth", scale="small")
    variants = {
        "unweighted-bfs": parhde(g, s=10, seed=0),
        "unit-sssp": parhde(
            unit_weights(g), s=10, seed=0, weighted=True, delta=1.0
        ),
        "int-distance": parhde(
            random_integer_weights(g, 1, 64, seed=1), s=10, seed=0,
            weighted=True,
        ),
        "int-similarity": parhde(
            random_integer_weights(g, 1, 64, seed=1), s=10, seed=0,
            weighted=True, weight_interpretation="similarity",
        ),
        "real-distance": parhde(
            random_real_weights(g, seed=2), s=10, seed=0, weighted=True
        ),
    }
    return g, variants


def test_weighted_layouts(benchmark, report):
    g, variants = benchmark.pedantic(_run, rounds=1, iterations=1)

    rng = np.random.default_rng(0)
    random_stress = sampled_stress(
        g, rng.standard_normal((g.n, 2)), seed=3
    )
    lines = [
        f"graph: {g.name} (n={g.n}, m={g.m}); random-layout stress"
        f" {random_stress:.3f}",
        f"{'variant':<16} {'stress':>8} {'BFS/SSSP (s, 28c)':>18}",
        "-" * 48,
    ]
    times = {}
    for name, res in variants.items():
        stress = sampled_stress(g, res.coords, seed=3)
        t = res.phase_seconds(BRIDGES_RSM, 28)["BFS"]
        times[name] = t
        lines.append(f"{name:<16} {stress:>8.4f} {t:>18.6f}")
        assert np.all(np.isfinite(res.coords))
        var = res.coords.var(axis=0)
        assert var.min() > 1e-6 * var.max()
        # Hop-count stress is only meaningful against the unweighted
        # metric, but every variant must still beat random placement.
        assert stress < 0.6 * random_stress, name
    report("weighted_layout", "\n".join(lines))

    # Unit-weight SSSP costs more than BFS but stays the same order;
    # real/integer weights cost more still (the section 4.4 ordering).
    assert times["unweighted-bfs"] < times["unit-sssp"]
    assert times["unit-sssp"] < 12 * times["unweighted-bfs"]
    assert times["int-distance"] > times["unweighted-bfs"]
