"""Section 4.5.4: ParHDE coordinates driving graph partitioning.

Measures the full pipeline the paper sketches: geometric recursive
bisection and spectral splits on ParHDE coordinates, followed by
Fiduccia-Mattheyses refinement restricted to a coordinate band around
the cut ("coordinates can be used to reduce the work performed in the
Kernighan-Lin based refinement stages").  Also writes the colored
partition visualization.
"""

import numpy as np

from repro import parhde
from repro.drawing import partition_edge_colors, render_layout, write_png
from repro.partition import (
    balance,
    coordinate_band,
    coordinate_bisection,
    cut_fraction,
    fm_refine,
    median_split,
)

from conftest import load_cached

GRAPHS = ("barth", "ecology", "road", "pa")


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        layout = parhde(g, s=10, seed=0)
        geo = coordinate_bisection(g, layout.coords, 2)
        spec = median_split(layout.coords[:, 0])
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 2, size=g.n)
        band = coordinate_band(layout.coords, geo, frac=0.25)
        refined_full, full_stats = fm_refine(g, geo, max_passes=4)
        refined_band, band_stats = fm_refine(
            g, geo, candidates=band, max_passes=4
        )
        out[g.name] = dict(
            g=g, layout=layout, geo=geo, spec=spec, rand=rand,
            full=(refined_full, full_stats), band=(refined_band, band_stats),
        )
    return out


def test_partition_quality(benchmark, report, results_dir):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<16} {'random':>8} {'geometric':>10} {'spectral':>9}"
        f" {'geo+FM':>8} {'band-FM':>8} {'work save':>10}",
        "-" * 70,
    ]
    for name, r in runs.items():
        g = r["g"]
        cf = {
            "random": cut_fraction(g, r["rand"]),
            "geo": cut_fraction(g, r["geo"]),
            "spec": cut_fraction(g, r["spec"]),
            "full": cut_fraction(g, r["full"][0]),
            "band": cut_fraction(g, r["band"][0]),
        }
        work_save = r["full"][1].gain_updates / max(
            r["band"][1].gain_updates, 1
        )
        lines.append(
            f"{name:<16} {cf['random']:>8.3f} {cf['geo']:>10.3f}"
            f" {cf['spec']:>9.3f} {cf['full']:>8.3f} {cf['band']:>8.3f}"
            f" {work_save:>9.1f}x"
        )
        # Layout-driven cuts crush random assignment.
        assert cf["geo"] < 0.35 * cf["random"]
        assert cf["spec"] < 0.35 * cf["random"]
        # FM refinement never hurts; band-restricted FM stays close
        # while doing a fraction of the gain maintenance.
        assert cf["full"] <= cf["geo"] + 1e-12
        assert cf["band"] <= cf["geo"] + 1e-12
        assert work_save > 1.5
        # Balance maintained throughout.
        for parts in (r["geo"], r["spec"], r["full"][0], r["band"][0]):
            assert balance(parts, 2) < 1.1

    # Visualization (the paper's partition-coloring figures).
    r = runs[next(iter(runs))]
    g, layout = r["g"], r["layout"]
    u, v = g.edge_list()
    colors = partition_edge_colors(u, v, r["full"][0])
    canvas = render_layout(
        g, layout.coords, width=500, height=500, edge_colors=colors
    )
    write_png(results_dir / "partition_visualization.png", canvas.pixels)
    lines.append("\nvisualization -> partition_visualization.png")
    report("partition_quality", "\n".join(lines))
