"""Progressive LOD: first-paint latency vs full layout on a large graph.

The product claim behind :mod:`repro.lod` is *instant first paint*: a
graph too large to lay out inside an interactive budget answers
immediately from the coarsest servable level of a spectrum-preserving
hierarchy, then refines to full quality asynchronously.  This benchmark
measures that claim for real on a >=100k-vertex synthetic graph:

* ``t_first`` — wall time of the progressive path's first frame,
  *including* the hierarchy build (the cost a cold request actually
  pays);
* ``t_full`` — wall time of the ordinary full-quality layout;
* the **quality-vs-tier curve** — pivot-sampled stress of every tier's
  prolonged-to-finest coordinates, quantifying what the coarse first
  paint trades for its latency (stress decreases monotonically-ish as
  tiers refine; the final tier IS the full layout).

Gate: ``t_full / t_first >= 5`` (the acceptance criterion for the LOD
subsystem), and the hierarchy's measured eigenvalue distortion stays
within the configured bound.  Results land in
``benchmarks/results/progressive_lod.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import parhde
from repro.graph import grid2d, preprocess
from repro.lod import LodConfig, build_lod_hierarchy, progressive_layout
from repro.metrics import sampled_stress
from repro.validate import check_lod_distortion

ROWS, COLS = 400, 375  # 150k vertices >= the 100k acceptance floor
S = 24  # interactive-quality subspace; full layout ~10 s on 2 cores
MIN_SPEEDUP = 5.0
DISTORTION_BOUND = 3.0
STRESS_SAMPLES = 6


def _run() -> dict:
    g = preprocess(grid2d(ROWS, COLS), name="biggrid")

    t0 = time.perf_counter()
    full = parhde(g, S, seed=0)
    t_full = time.perf_counter() - t0

    config = LodConfig(distortion_bound=DISTORTION_BOUND)
    frames = progressive_layout(g, S, seed=0, config=config)
    t0 = time.perf_counter()
    first = next(frames)
    t_first = time.perf_counter() - t0  # includes the hierarchy build

    tiers = [(first.tier, first.elapsed, first.result.coords)]
    for frame in frames:
        tiers.append((frame.tier, frame.elapsed, frame.result.coords))

    # Measurement hierarchy: coarsen past the serving floor so the tail
    # steps (fine level <= measure_limit vertices) get an exact dense
    # eigenvalue-distortion measurement.
    hierarchy = build_lod_hierarchy(
        g,
        coarsest_size=32,
        max_levels=config.max_levels + 4,
        shrink_floor=config.shrink_floor,
        measure_limit=config.measure_limit,
    )
    distortion = check_lod_distortion(hierarchy, bound=DISTORTION_BOUND)

    curve = [
        (tier, elapsed, sampled_stress(g, coords, samples=STRESS_SAMPLES))
        for tier, elapsed, coords in tiers
    ]
    return {
        "n": g.n,
        "m": g.m,
        "t_full": t_full,
        "t_first": t_first,
        "sizes": hierarchy.sizes(),
        "max_distortion": hierarchy.max_distortion,
        "distortion_ok": distortion.ok,
        "curve": curve,
        "full_stress": sampled_stress(
            g, full.coords, samples=STRESS_SAMPLES
        ),
    }


def test_progressive_first_paint(benchmark, report):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = r["t_full"] / r["t_first"]

    lines = [
        f"graph: biggrid ({r['n']:,} vertices, {r['m']:,} edges)",
        f"hierarchy sizes: {r['sizes']}",
        "max measured eigenvalue distortion:"
        f" {r['max_distortion'] if r['max_distortion'] is None else format(r['max_distortion'], '.3f')}"
        f" (bound {DISTORTION_BOUND}, ok={r['distortion_ok']})",
        "",
        f"t_full  = {r['t_full'] * 1e3:8.1f} ms   (ordinary full layout)",
        f"t_first = {r['t_first'] * 1e3:8.1f} ms   (coarse first paint,"
        f" incl. hierarchy build)",
        f"first-paint speedup = {speedup:.1f}x   (gate: >= {MIN_SPEEDUP}x)",
        "",
        "quality-vs-tier curve (pivot-sampled stress, lower is better):",
        f"  {'tier':<8} {'t (ms)':>9} {'stress':>10}",
    ]
    for tier, elapsed, stress in r["curve"]:
        lines.append(f"  {tier:<8} {elapsed * 1e3:9.1f} {stress:10.4f}")
    lines.append(
        f"  {'(direct)':<8} {r['t_full'] * 1e3:9.1f}"
        f" {r['full_stress']:10.4f}"
    )
    report("progressive_lod", "\n".join(lines))

    assert r["n"] >= 100_000
    assert speedup >= MIN_SPEEDUP, (
        f"first paint only {speedup:.1f}x faster than full"
    )
    assert r["max_distortion"] is not None, "no level was measured"
    assert r["distortion_ok"], (
        f"hierarchy distortion {r['max_distortion']} exceeds bound"
    )
    # The refinement chain must actually improve quality: the final
    # (full) tier's stress beats the first paint's.
    first_stress = r["curve"][0][2]
    final_stress = r["curve"][-1][2]
    assert final_stress < first_stress
    # And the final tier is genuinely full quality (same algorithm and
    # parameters as the direct run, up to seeded-jitter noise).
    assert np.isclose(final_stress, r["full_stress"], rtol=0.25)
