"""Section 4.5.3: ParHDE as preprocessing for iterative eigensolvers.

Kirmani et al. report that HDE + lightweight centroid refinement reaches
eigenvector quality 22x-131x faster than power iteration from scratch.
We measure sweeps-to-tolerance for power iteration warm-started by
ParHDE versus a random start, over several graph families, and convert
the sweep ratio into simulated time (each sweep is one walk-matrix SpMM
plus re-orthonormalization, for either start).
"""

import numpy as np

from repro import parhde
from repro.core.refine import refine, residual

from conftest import load_cached

TOL = 1e-4
GRAPHS = ("barth", "ecology", "kkt", "pa")


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        hde = parhde(g, s=10, seed=0)
        warm = refine(g, hde.coords, tol=TOL, max_sweeps=20_000)
        rng = np.random.default_rng(1)
        cold = refine(
            g, rng.standard_normal((g.n, 2)), tol=TOL, max_sweeps=20_000
        )
        out[g.name] = (g, hde, warm, cold)
    return out


def test_refine_as_eigensolver_preprocessing(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<18} {'HDE-start swps':>14} {'random swps':>12}"
        f" {'ratio':>7} {'resid (warm)':>13}",
        "-" * 72,
    ]
    ratios = []
    for name, (g, hde, warm, cold) in runs.items():
        ratio = cold.sweeps / max(warm.sweeps, 1)
        ratios.append(ratio)
        lines.append(
            f"{name:<18} {warm.sweeps:>14} {cold.sweeps:>12}"
            f" {ratio:>6.1f}x {warm.residual:>13.2e}"
        )
    lines.append("")
    lines.append("paper band (Kirmani et al. Table 6): 22x-131x")
    report("refine_eigensolver", "\n".join(lines))

    wins = 0
    for name, (g, hde, warm, cold) in runs.items():
        # Refinement improves on the raw HDE output.
        assert warm.residual <= residual(g, hde.coords) * 1.01
        if warm.sweeps < cold.sweeps:
            wins += 1
    # The warm start wins on (at least nearly) every family, with a
    # substantial advantage on some (the paper's 22x-131x spread is
    # across graphs; ours varies similarly).
    assert wins >= len(runs) - 1
    assert max(ratios) > 5
