"""Figure 6: PivotMDS and PHDE execution-time breakdowns.

Left: PivotMDS on 28 cores; middle: PivotMDS on 1 core; right: PHDE on
28 cores.  The chart's message: BFS dominates everywhere, and the
centering + small-matmul phases are modest slices that grow slightly at
28 cores (they are bandwidth-bound while BFS keeps scaling).
"""

from repro import datasets, phde, pivotmds
from repro.parallel import BRIDGES_RSM
from repro.parallel.report import format_breakdown_table

from conftest import load_cached

S = 10


def _run():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        out[g.name] = (pivotmds(g, S, seed=0), phde(g, S, seed=0))
    return out


def test_fig6_breakdowns(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    pm28 = {n: r.breakdown(BRIDGES_RSM, 28) for n, (r, _) in runs.items()}
    pm1 = {n: r.breakdown(BRIDGES_RSM, 1) for n, (r, _) in runs.items()}
    ph28 = {n: p.breakdown(BRIDGES_RSM, 28) for n, (_, p) in runs.items()}

    text = "\n\n".join(
        f"--- {title} ---\n{format_breakdown_table(rows)}"
        for title, rows in [
            ("PivotMDS, 28 cores (Fig 6 left)", pm28),
            ("PivotMDS, 1 core (Fig 6 middle)", pm1),
            ("PHDE, 28 cores (Fig 6 right)", ph28),
        ]
    )
    report("fig6_phde_breakdown", text)

    for name in runs:
        # BFS is the dominant phase in every chart of Figure 6.
        for bd in (pm28[name], pm1[name], ph28[name]):
            pct = bd.percent
            bfs = pct["BFS"]
            assert bfs == max(pct.values())
            assert bfs > 40
        # Centering phases exist but stay small relative to BFS.
        assert pm28[name].percent["DblCntr"] < pm28[name].percent["BFS"]
        assert ph28[name].percent["ColCenter"] < ph28[name].percent["BFS"]
        # Double centering costs at least as much as column centering
        # (two reduction passes instead of one, section 3.2).
        dbl = pm28[name].seconds["DblCntr"]
        col = ph28[name].seconds["ColCenter"]
        assert dbl >= col * 0.9
