"""Sharded-cluster scaling: rps and p99 vs worker-process count.

Replays the same deterministic mixed hot/cold request stream as
``bench_service_throughput.py`` — but *cold-heavy* (every other request
is a unique fingerprint), because cold computes are what extra worker
processes can actually parallelize — through a live
:class:`~repro.cluster.router.ClusterRouter` at 1, 2 and 4 workers,
reporting real requests/sec, hit rate and latency percentiles into
``benchmarks/results/cluster_scaling.txt``.

Scaling acceptance rides on the machine model's distributed dimension,
the same substitution every other scaling claim in this reproduction
makes (the CI container is a single-core box where extra *processes*
cannot add real CPU throughput, just as it is not the paper's 28-core
Bridges node): each cold request's measured 1-worker service time is
placed on the consistent-hash ring and priced by
:func:`repro.parallel.machine.shard_times` (compute + α-β messaging per
request).  The modeled 4-shard throughput must be >= 2x the modeled
1-shard throughput on this workload; the measured numbers are reported
alongside, unadjusted, for hardware that does have the cores.
"""

from __future__ import annotations

import threading
import time

from repro.cluster import ClusterRouter, compare_policies, hash_assignment
from repro.parallel.machine import BRIDGES_RSM, REPLY_BYTES, shard_times

# Cold-heavy mixed stream: every 2nd request is a unique fingerprint.
HOT_GRAPHS = ("barth", "ecology", "cage")
N_REQUESTS = 96
COLD_EVERY = 2
CLIENTS = 8
WORKER_COUNTS = (1, 2, 4)
MIN_MODELED_SPEEDUP = 2.0


def _stream() -> list[dict]:
    requests = []
    for i in range(N_REQUESTS):
        cold = i % COLD_EVERY == 0
        requests.append(
            {
                "graph": HOT_GRAPHS[i % len(HOT_GRAPHS)],
                "scale": "tiny",
                "s": 6,
                "seed": 1000 + i if cold else 0,
                "include_coords": False,
            }
        )
    return requests


def _replay(workers: int) -> dict:
    router = ClusterRouter(
        workers,
        compute_threads=1,
        queue_limit=64,
        timeout=120.0,
        cache_mb=64.0,
        heartbeat_interval=0.5,
    ).start()
    stream = _stream()
    cursor = {"next": 0}
    lock = threading.Lock()
    statuses: list[str] = []
    service_seconds: dict[str, float] = {}

    def client():
        while True:
            with lock:
                i = cursor["next"]
                if i >= len(stream):
                    return
                cursor["next"] = i + 1
            body = stream[i]
            response = router.layout(body)
            with lock:
                statuses.append(response["status"])
                # Worker-side service time of each distinct fingerprint,
                # the compute cost the shard model prices.
                key = f"{body['graph']}:{body['seed']}"
                service_seconds[key] = max(
                    service_seconds.get(key, 0.0),
                    float(response.get("elapsed_seconds", 0.0)),
                )

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    snap = router.telemetry.snapshot()
    router.close()
    hits = sum(1 for s in statuses if s.endswith("-hit"))
    return {
        "wall": wall,
        "rps": len(stream) / wall,
        "hit_rate": hits / len(stream),
        "statuses": {s: statuses.count(s) for s in sorted(set(statuses))},
        "latency": snap["histograms"]["router.latency_seconds"],
        "service_seconds": service_seconds,
    }


def _modeled_rps(stream: list[dict], service_seconds: dict[str, float]):
    """Modeled cluster throughput per shard count (see module docs)."""
    costs = {}
    for i, body in enumerate(stream):
        key = f"{body['graph']}:{body['seed']}"
        # Every request costs its fingerprint's measured service time;
        # hot repeats are near-free cache hits, and the max() above
        # keeps the one genuine compute.  Unique per-request keys keep
        # the ring's placement granular, like the live router's
        # coalescing leaves at most one compute per fingerprint.
        costs[f"{key}#{i}"] = (
            service_seconds.get(key, 0.0) if i % COLD_EVERY == 0 else 1e-4,
            REPLY_BYTES,
        )
    out = {}
    for shards in WORKER_COUNTS:
        machine = BRIDGES_RSM.with_shards(shards)
        times = shard_times(hash_assignment(costs, shards), machine, 1)
        out[shards] = len(stream) / max(times.values())
    policy = compare_policies(costs, BRIDGES_RSM.with_shards(4), p=1)
    return out, policy


def test_cluster_scaling(benchmark, report):
    results = {}

    def _run_all():
        for workers in WORKER_COUNTS:
            results[workers] = _replay(workers)
        return results

    benchmark.pedantic(_run_all, rounds=1, iterations=1)

    modeled, policy = _modeled_rps(
        _stream(), results[1]["service_seconds"]
    )
    modeled_speedup = modeled[4] / modeled[1]

    lines = [
        f"{'requests':<22} {N_REQUESTS}",
        f"{'client threads':<22} {CLIENTS}",
        f"{'cold share':<22} 1/{COLD_EVERY}",
        f"{'hot graphs':<22} {', '.join(HOT_GRAPHS)}",
        "",
        f"{'workers':<10} {'rps':>8} {'hit%':>7} {'p50 ms':>9}"
        f" {'p99 ms':>9} {'wall s':>8}",
    ]
    for workers in WORKER_COUNTS:
        r = results[workers]
        lat = r["latency"]
        lines.append(
            f"{workers:<10} {r['rps']:>8.1f} {r['hit_rate'] * 100:>6.1f}%"
            f" {lat['p50'] * 1000:>9.2f} {lat['p99'] * 1000:>9.2f}"
            f" {r['wall']:>8.3f}"
        )
    lines += [
        "",
        "modeled cluster throughput (shard_times over the consistent-hash",
        "placement of measured 1-worker service times; see module docs):",
    ]
    for workers in WORKER_COUNTS:
        lines.append(
            f"{'modeled rps @' + str(workers):<22} {modeled[workers]:.1f}"
        )
    lines += [
        f"{'modeled 4w/1w':<22} {modeled_speedup:.2f}x",
        f"{'hash/balanced makespan':<22} {policy['hash_over_balanced']:.3f}",
    ]
    report("cluster_scaling", "\n".join(lines))

    assert results[4]["hit_rate"] < 0.6, "workload should stay cold-heavy"
    assert modeled_speedup >= MIN_MODELED_SPEEDUP, (
        f"modeled 4-worker throughput is only {modeled_speedup:.2f}x the"
        f" 1-worker baseline (gate: >= {MIN_MODELED_SPEEDUP}x)"
    )
