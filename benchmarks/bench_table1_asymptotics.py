"""Table 1: empirical verification of the asymptotic phase analysis.

The paper's work bounds (and their echo in section 5's conclusions):
BFS and TripleProd scale *linearly* with the subspace dimension ``s``,
DOrtho *quadratically*, and the eigensolve is independent of ``n``.  We
run ParHDE at doubling values of ``s`` and fit the growth of each
phase's recorded work from the ledger itself.
"""

import numpy as np

from repro import parhde
from repro.parallel import Ledger

from conftest import load_cached

S_VALUES = (5, 10, 20, 40)


def _phase_work(res):
    out = {}
    for phase, tot in res.ledger.phase_totals().items():
        c = tot.combined
        out[phase] = c.work + c.flops
    return out


def _run():
    g = load_cached("kron")
    return g, {s: _phase_work(parhde(g, s, seed=0)) for s in S_VALUES}


def _fit_exponent(s_values, works):
    """Least-squares slope of log(work) vs log(s)."""
    x = np.log(np.array(s_values, dtype=float))
    y = np.log(np.maximum(np.array(works, dtype=float), 1e-12))
    return float(np.polyfit(x, y, 1)[0])


def test_table1_asymptotics(benchmark, report):
    g, runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    exps = {}
    lines = [f"graph: {g.name}", f"{'phase':<12} " + "  ".join(
        f"s={s:>3}" for s in S_VALUES
    ) + "   fitted exponent (paper)"]
    expectations = {"BFS": (1.0, "s"), "DOrtho": (2.0, "s^2"),
                    "TripleProd": (1.0, "s")}
    for phase, (expected, label) in expectations.items():
        works = [runs[s][phase] for s in S_VALUES]
        exps[phase] = _fit_exponent(S_VALUES, works)
        cells = "  ".join(f"{w / 1e6:5.1f}M" for w in works)
        lines.append(
            f"{phase:<12} {cells}   {exps[phase]:.2f} ({label})"
        )
    report("table1_asymptotics", "\n".join(lines))

    # BFS: linear in s (each pivot is one traversal).
    assert 0.75 < exps["BFS"] < 1.3
    # DOrtho: quadratic in s (loop-carried Gram-Schmidt projections).
    assert 1.6 < exps["DOrtho"] < 2.3
    # TripleProd: linear in s (s SpMVs + the rank-s gemm, m/n >> s).
    assert 0.75 < exps["TripleProd"] < 1.5
