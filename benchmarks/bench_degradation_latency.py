"""Tail latency and availability with vs. without the degradation ladder.

Replays the same deterministic request stream through two engines — the
classic fail-fast compute path and the resilient one
(:class:`~repro.service.engine.ResilienceConfig`) — under three traffic
profiles:

* **clean** — no faults: measures the pure overhead of running every
  computation through the ladder machinery;
* **stalls** — a third of the requests hit a chaos-injected BFS stall:
  the per-phase budgets abandon the stalled rung, so the resilient p99
  stays bounded by the request deadline (at the cost of a degraded
  tier), while the fail-fast engine simply rides the stall out;
* **faults** — a third of the requests hit a persistent kernel fault:
  the fail-fast engine surfaces errors (availability drops), the ladder
  descends and keeps answering.

Reports per-engine success rate, p50/p99 latency and quality-tier mix
into ``benchmarks/results/degradation_latency.txt``.  Like the service
throughput benchmark this always runs at a small graph scale: the
quantity under test is serving behavior, not layout time.
"""

from __future__ import annotations

import time

from repro.resilience import RetryPolicy, chaos
from repro.service import (
    LayoutEngine,
    LayoutRequest,
    ResilienceConfig,
    ServiceError,
)

from conftest import load_cached

N_REQUESTS = 12
FAULT_EVERY = 3  # every 3rd request is faulty in the chaos profiles
TIMEOUT = 2.5
STALL = 0.35

PROFILES = ("clean", "stalls", "faults")


def _engine(g, *, resilient: bool) -> LayoutEngine:
    return LayoutEngine(
        workers=2,
        queue_limit=16,
        timeout=TIMEOUT,
        graph_loader=lambda name, scale, seed: g,
        resilience=(
            ResilienceConfig(
                retry=RetryPolicy(max_attempts=1), breaker_threshold=10_000
            )
            if resilient
            else None
        ),
    )


def _replay(g, *, resilient: bool, profile: str) -> dict:
    engine = _engine(g, resilient=resilient)
    latencies: list[float] = []
    tiers: dict[str, int] = {}
    failures = 0
    try:
        for i in range(N_REQUESTS):
            # Cold fingerprints throughout: every request computes.
            request = LayoutRequest(
                graph="bench", scale="tiny", s=8, seed=7000 + i
            )
            faulty = profile != "clean" and i % FAULT_EVERY == 0
            if faulty and profile == "stalls":
                fault = chaos.inject("parhde.bfs", sleep=STALL, times=1)
            elif faulty and profile == "faults":
                fault = chaos.inject("parhde.dortho", error=True)
            else:
                fault = None
            t0 = time.perf_counter()
            try:
                if fault is not None:
                    with fault:
                        response = engine.submit(request)
                else:
                    response = engine.submit(request)
            except ServiceError:
                failures += 1
            else:
                tier = response.quality_tier
                tiers[tier] = tiers.get(tier, 0) + 1
            latencies.append(time.perf_counter() - t0)
    finally:
        chaos.reset()
        engine.close()
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1)))]

    return {
        "success_rate": (N_REQUESTS - failures) / N_REQUESTS,
        "p50": pct(50),
        "p99": pct(99),
        "max": ordered[-1],
        "tiers": tiers,
    }


def _run_matrix() -> dict:
    g = load_cached("barth", "tiny")
    return {
        (profile, mode): _replay(g, resilient=(mode == "ladder"), profile=profile)
        for profile in PROFILES
        for mode in ("fail-fast", "ladder")
    }


def test_degradation_latency(benchmark, report):
    results = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)

    # The ladder's availability contract: every chaos request answers.
    assert results[("faults", "ladder")]["success_rate"] == 1.0
    assert results[("stalls", "ladder")]["success_rate"] == 1.0
    # The fail-fast path surfaces the persistent faults as errors.
    assert results[("faults", "fail-fast")]["success_rate"] < 1.0
    # Degradation keeps the stalled tail inside the request deadline.
    assert results[("stalls", "ladder")]["p99"] < TIMEOUT

    header = (
        f"{'profile':<10} {'engine':<10} {'ok%':>6} {'p50 ms':>9}"
        f" {'p99 ms':>9} {'max ms':>9}  tiers"
    )
    lines = [
        f"{'requests/profile':<22} {N_REQUESTS}",
        f"{'faulty share':<22} 1/{FAULT_EVERY}",
        f"{'request timeout':<22} {TIMEOUT:.1f}s",
        f"{'injected BFS stall':<22} {STALL:.2f}s",
        "",
        header,
    ]
    for (profile, mode), r in results.items():
        lines.append(
            f"{profile:<10} {mode:<10} {r['success_rate'] * 100:>5.0f}%"
            f" {r['p50'] * 1000:>9.1f} {r['p99'] * 1000:>9.1f}"
            f" {r['max'] * 1000:>9.1f}  {r['tiers']}"
        )
    report("degradation_latency", "\n".join(lines))
