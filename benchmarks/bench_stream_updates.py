"""Dynamic-layout update latency: incremental repair vs full recompute.

Replays a deterministic stream of small edge deltas (triadic-closure
inserts plus random deletes, the realistic dynamic-graph regime) through
a :class:`~repro.stream.StreamSession` and reports

* median / p95 update latency against the latency of a from-scratch
  ``parhde`` recompute on the same edited graph;
* the *repair hit-rate* — the fraction of updates the drift/staleness
  policy kept on the cheap incremental path;
* the modeled BFS work ratio (full relayout work units / median repair
  work units per the kernel-cost ledger), the machine-independent view
  of the same speedup.

Results land in ``benchmarks/results/stream_updates.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import parhde
from repro.stream import StreamSession, bfs_work_units, edge_delta

from conftest import BENCH_SCALE, load_cached

GRAPH = "barth"
S = 10
N_UPDATES = 24
EDITS_PER_UPDATE = 8  # 4 deletes + 4 triadic-closure inserts
SEED = 11


def _build_deltas(g, rng):
    """Deterministic update stream against the *evolving* edge set."""
    edges = set(zip(*(a.tolist() for a in g.edge_list())))
    adj = {u: set(map(int, g.neighbors(u))) for u in range(g.n)}
    deltas = []
    for _ in range(N_UPDATES):
        inserts, deletes = [], []
        touched = set()  # one batch may not insert AND delete the same edge
        pool = sorted(edges)
        for i in rng.choice(len(pool), size=EDITS_PER_UPDATE // 2, replace=False):
            u, v = pool[int(i)]
            # never orphan a vertex: layouts need a connected graph
            if len(adj[u]) <= 1 or len(adj[v]) <= 1:
                continue
            edges.discard((u, v))
            adj[u].discard(v)
            adj[v].discard(u)
            touched.add((u, v))
            deletes.append((u, v))
        while len(inserts) < EDITS_PER_UPDATE // 2:
            u = int(rng.integers(g.n))
            if not adj[u]:
                continue
            mid = sorted(adj[u])[int(rng.integers(len(adj[u])))]
            if not adj[mid]:
                continue
            v = sorted(adj[mid])[int(rng.integers(len(adj[mid])))]
            a, b = min(u, v), max(u, v)
            if a == b or (a, b) in edges or (a, b) in touched:
                continue
            touched.add((a, b))
            edges.add((a, b))
            adj[a].add(b)
            adj[b].add(a)
            inserts.append((a, b))
        deltas.append(edge_delta(inserts=inserts, deletes=deletes))
    return deltas


def _replay() -> dict:
    g = load_cached(GRAPH)
    rng = np.random.default_rng(SEED)
    deltas = _build_deltas(g, rng)

    session = StreamSession(g, S, seed=0)
    latencies, repair_work, repairs = [], [], 0
    for delta in deltas:
        try:
            update = session.update(delta)
        except ValueError:
            continue  # a delta that would disconnect the graph
        latencies.append(update.elapsed)
        if update.mode == "repair":
            repairs += 1
            repair_work.append(bfs_work_units(update.ledger))

    # full-recompute baseline on the final edited graph
    edited = session.graph
    t0 = time.perf_counter()
    full = parhde(edited, S, seed=0)
    full_latency = time.perf_counter() - t0

    lat = np.asarray(latencies)
    return {
        "n": g.n,
        "m": g.m,
        "updates": len(lat),
        "repairs": repairs,
        "hit_rate": repairs / max(len(lat), 1),
        "p50": float(np.median(lat)),
        "p95": float(np.quantile(lat, 0.95)),
        "full_latency": full_latency,
        "work_full": bfs_work_units(full.ledger),
        "work_repair_p50": float(np.median(repair_work)) if repair_work else 0.0,
    }


def test_stream_update_latency(benchmark, report):
    stats = benchmark.pedantic(_replay, rounds=1, iterations=1)
    assert stats["updates"] > 0
    assert stats["hit_rate"] >= 0.5, (
        "small triadic deltas should mostly stay on the repair path"
    )

    speedup = stats["full_latency"] / max(stats["p50"], 1e-9)
    work_ratio = stats["work_full"] / max(stats["work_repair_p50"], 1e-9)
    lines = [
        f"{'graph':<26} {GRAPH}@{BENCH_SCALE} (n={stats['n']}, m={stats['m']})",
        f"{'updates replayed':<26} {stats['updates']}"
        f" ({EDITS_PER_UPDATE} edits each)",
        f"{'repair hit-rate':<26} {stats['hit_rate'] * 100:.1f}%"
        f" ({stats['repairs']}/{stats['updates']})",
        "",
        f"{'update latency p50':<26} {stats['p50'] * 1000:.2f} ms",
        f"{'update latency p95':<26} {stats['p95'] * 1000:.2f} ms",
        f"{'full recompute latency':<26} {stats['full_latency'] * 1000:.2f} ms",
        f"{'median latency speedup':<26} {speedup:.1f}x",
        "",
        f"{'BFS work, full relayout':<26} {stats['work_full']:.3g}",
        f"{'BFS work, repair p50':<26} {stats['work_repair_p50']:.3g}",
        f"{'modeled work ratio':<26} {work_ratio:.1f}x",
    ]
    report("stream_updates", "\n".join(lines))
