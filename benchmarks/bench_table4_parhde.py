"""Table 4: ParHDE 28-core execution time and relative speedup, all graphs.

Also checks the sk-2005 anomaly the paper resolves in section 4.4: the
web graph runs *faster* than twitter despite having more edges, because
its locality-friendly ordering accelerates the LS step.
"""

from repro import datasets, parhde
from repro.parallel import BRIDGES_RSM

from conftest import load_cached

S = 10
PAPER = {  # (time s, relative speedup) on 28 cores
    "urand27": (52.5, 24.5), "kron27": (34.3, 14.8), "sk-2005": (9.9, 11.3),
    "twitter7": (23.8, 11.0), "road_usa": (4.6, 7.1), "CurlCurl_4": (0.6, 5.8),
    "kkt_power": (0.5, 8.1), "cage14": (0.3, 9.1), "ecology1": (0.3, 4.2),
    "pa2010": (0.1, 4.2),
}
ORDER = tuple(datasets.LARGE_FIVE) + tuple(datasets.SMALL_FIVE)


def _run():
    return {
        load_cached(k).name: parhde(load_cached(k), S, seed=0)
        for k in ORDER
    }


def test_table4_times_and_speedups(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<20} {'Time(s)':>10} {'Rel.Spd':>8} {'paper spd':>10}",
        "-" * 52,
    ]
    spd = {}
    t28 = {}
    for name, res in runs.items():
        paper_name = name.split("[")[0]
        t = res.simulated_seconds(BRIDGES_RSM, 28)
        s = res.speedup(BRIDGES_RSM, 28)
        t28[paper_name] = t
        spd[paper_name] = s
        lines.append(
            f"{name:<20} {t:>10.5f} {s:>7.1f}x {PAPER[paper_name][1]:>9.1f}x"
        )
    report("table4_parhde", "\n".join(lines))

    # All speedups are real (> 1) and within the 28-core budget.
    assert all(1.0 < v <= 28.5 for v in spd.values())
    # urand leads; road trails among the large five.
    large = {k: spd[k] for k in ("urand27", "kron27", "sk-2005", "twitter7", "road_usa")}
    assert max(large, key=large.get) == "urand27"
    assert min(large, key=large.get) == "road_usa"
    # The sk-2005 anomaly: faster than twitter7 despite more edges.
    g_web, g_tw = load_cached("web"), load_cached("twitter")
    assert g_web.m > g_tw.m
    assert t28["sk-2005"] < t28["twitter7"]
    # Small graphs scale worse than the big latency-bound ones.
    assert spd["pa2010"] < spd["urand27"]
    assert spd["ecology1"] < spd["urand27"]
