"""Shared benchmark fixtures: cached graphs and a results writer.

Every benchmark regenerates one table or figure of the paper.  Each one
both *times* the real computation (pytest-benchmark) and prints the
paper-style table built from the machine model, writing a copy under
``benchmarks/results/`` so EXPERIMENTS.md can reference the output.

Graphs default to the ``medium`` scale preset (the calibration scale of
the machine model); set ``REPRO_BENCH_SCALE=small`` for a quick pass.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import datasets

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "medium")

_cache: dict[str, object] = {}


def load_cached(name: str, scale: str | None = None):
    """Session-cached dataset load (graph construction is not timed)."""
    scale = scale or BENCH_SCALE
    key = f"{name}@{scale}"
    if key not in _cache:
        _cache[key] = datasets.load(name, scale=scale)
    return _cache[key]


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Writer: ``report(experiment_id, text)`` prints and persists."""

    def _write(experiment: str, text: str) -> None:
        print(f"\n===== {experiment} =====\n{text}\n")
        (results_dir / f"{experiment}.txt").write_text(text + "\n")

    return _write
