"""LOD mass weighting: coarse-tier quality with vs without supernode masses.

The coarsening hierarchy (:mod:`repro.lod.hierarchy`) has always
tracked per-supernode masses — how many finest vertices each coarse
vertex stands for — but the coarse-tier solves ignored them, treating a
1000-vertex supernode and a singleton identically during
orthogonalization.  The mass-weighted solver (``parhde(...,
masses=...)``, ROADMAP item 4) lets the progressive path weight the
coarse inner product by ``M·D`` so heavy supernodes anchor the spectral
axes proportionally to the vertices they stand for.

This benchmark quantifies the fix on one hierarchy per graph family:
for each coarse level it lays the level graph out twice — unweighted
(the old behaviour) and mass-weighted (what :func:`progressive_layout`
now does) — prolongs both to the finest graph, and compares
pivot-sampled stress.  Gate: the mass-weighted coarse frame is no worse
than the unweighted one (ratio <= 1.05 tolerance band) on every level,
and strictly better somewhere on hierarchies whose mass spread is
meaningful.  Results land in ``benchmarks/results/lod_masses.txt``.
"""

from __future__ import annotations

from repro.core import parhde
from repro.graph import copying_powerlaw, grid2d, preprocess
from repro.lod import build_lod_hierarchy
from repro.metrics import sampled_stress

S = 12
SEED = 0
STRESS_SAMPLES = 8
TOLERANCE = 1.05  # mass weighting must never cost more than 5% stress


def _graphs():
    return [
        preprocess(grid2d(64, 64), name="grid64"),
        preprocess(copying_powerlaw(4096, out_degree=6, seed=3), name="cpl4k"),
    ]


def _level_stress(g, hierarchy, depth, masses) -> float:
    level = hierarchy.graph_at(depth)
    kwargs = {}
    if masses is not None:
        kwargs["masses"] = {
            int(i): float(m) for i, m in enumerate(masses) if m != 1.0
        }
    s_eff = min(S, max(2, level.n - 1))
    res = parhde(level.unweighted(), s_eff, seed=SEED, **kwargs)
    fine = hierarchy.prolong_to_finest(res.coords, depth, seed=SEED)
    return sampled_stress(g, fine, samples=STRESS_SAMPLES, seed=SEED)


def _run() -> dict:
    out = {}
    for g in _graphs():
        h = build_lod_hierarchy(g, coarsest_size=128, seed=SEED)
        rows = []
        for depth in range(1, len(h.levels) + 1):
            mass = h.mass_at(depth)
            plain = _level_stress(g, h, depth, None)
            weighted = _level_stress(g, h, depth, mass)
            rows.append(
                (depth, h.graph_at(depth).n, float(mass.max()), plain, weighted)
            )
        out[g.name] = rows
    return out


def test_lod_mass_weighting(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<10} {'depth':>5} {'n':>7} {'max-mass':>9}"
        f" {'plain':>10} {'weighted':>10} {'ratio':>7}",
        "-" * 64,
    ]
    improved_anywhere = {}
    for name, rows in runs.items():
        best = 1.0
        for depth, n, max_mass, plain, weighted in rows:
            ratio = weighted / plain if plain else 1.0
            best = min(best, ratio)
            lines.append(
                f"{name:<10} {depth:>5} {n:>7} {max_mass:>9.1f}"
                f" {plain:>10.4f} {weighted:>10.4f} {ratio:>7.3f}"
            )
            # Never meaningfully worse than the unweighted coarse solve.
            assert ratio <= TOLERANCE, (
                f"{name} depth {depth}: mass weighting degraded stress"
                f" {plain:.4f} -> {weighted:.4f}"
            )
        improved_anywhere[name] = best
    report("lod_masses", "\n".join(lines))

    # Somewhere in the sweep the masses must actually help: hierarchies
    # aggregate unevenly, and weighting by multiplicity should recover
    # part of what uniform weighting loses.
    assert min(improved_anywhere.values()) < 1.0
