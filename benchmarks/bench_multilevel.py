"""Future-work ablation: multilevel ParHDE vs the direct algorithm.

The paper's stated future work is adapting ParHDE to the multilevel
approach.  This ablation runs the full coarsen/layout/prolong/refine
pipeline and compares layout quality (pivot-sampled stress, subspace
angle to the direct layout) and the hierarchy statistics.
"""

from repro import datasets, multilevel_layout, parhde
from repro.metrics import principal_angles, sampled_stress

from conftest import load_cached

GRAPHS = ("barth", "ecology", "road")


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        direct = parhde(g, s=10, seed=0)
        ml = multilevel_layout(g, s=10, seed=0, refine_sweeps=25)
        out[g.name] = (g, direct, ml)
    return out


def test_multilevel_vs_direct(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<16} {'levels':>22} {'stress direct':>14}"
        f" {'stress ML':>10} {'angle':>7}",
        "-" * 76,
    ]
    for name, (g, direct, ml) in runs.items():
        s_direct = sampled_stress(g, direct.coords, seed=1)
        s_ml = sampled_stress(g, ml.coords, seed=1)
        ang = principal_angles(
            ml.coords, direct.coords, g.weighted_degrees
        )[0]
        sizes = "->".join(str(n) for n in [g.n] + ml.level_sizes())
        lines.append(
            f"{name:<16} {sizes:>22} {s_direct:>14.4f} {s_ml:>10.4f}"
            f" {ang:>7.3f}"
        )
        # The hierarchy shrinks geometrically to the coarse floor.
        assert ml.depth >= 2
        assert ml.level_sizes()[-1] < g.n // 3
        # Multilevel quality stays in the direct layout's ballpark.
        assert s_ml < 2.5 * s_direct
        # And both phases were accounted.
        phases = ml.layout.ledger.phases()
        assert {"Coarsen", "CoarseLayout", "Refine"} <= set(phases)
    report("multilevel_ablation", "\n".join(lines))
