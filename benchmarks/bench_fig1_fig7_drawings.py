"""Figures 1, 7 and 8: the barth5 drawings.

Renders the mesh-with-four-holes stand-in with every algorithm of
Figure 7 (ParHDE default, ParHDE with random pivots, PHDE, PivotMDS),
the exact spectral reference of Figure 1 (bottom), and the Figure 8
zoom.  PNGs land in ``benchmarks/results/``.

Quality gates replace eyeballing: each layout must (a) be far better
than random in pivot-sampled stress, (b) span two dimensions, and
(c) keep adjacent vertices close; the ParHDE layout must additionally
approximate the exact spectral plane ("captures the global structure").
"""

import numpy as np

from repro import parhde, phde, pivotmds, zoom_layout
from repro.baselines import spectral_layout
from repro.drawing import save_drawing
from repro.metrics import edge_length_stats, principal_angles, sampled_stress

from conftest import load_cached

S = 20


def _run():
    # The small preset keeps the exact-spectral reference affordable
    # (the mesh's near-degenerate lambda_2/lambda_3 pair converges
    # slowly, which is HDE's whole selling point).
    g = load_cached("barth", scale="small")
    layouts = {
        "parhde": parhde(g, S, seed=0).coords,
        "parhde-random-pivots": parhde(
            g, S, seed=0, pivots="random-concurrent"
        ).coords,
        "phde": phde(g, S, seed=0).coords,
        "pivotmds": pivotmds(g, S, seed=0).coords,
        "spectral-exact": spectral_layout(g, 2, tol=1e-8, seed=0).coords,
    }
    zoom = zoom_layout(g, center=g.n // 2, hops=10, s=10, seed=0)
    return g, layouts, zoom


def test_fig1_fig7_drawings(benchmark, report, results_dir):
    g, layouts, zoom = benchmark.pedantic(_run, rounds=1, iterations=1)

    rng = np.random.default_rng(0)
    random_coords = rng.standard_normal((g.n, 2))
    random_stress = sampled_stress(g, random_coords, seed=5)

    lines = [f"graph: {g.name} n={g.n} m={g.m}", ""]
    for name, coords in layouts.items():
        save_drawing(
            g, coords, results_dir / f"fig7_{name}.png", width=500, height=500
        )
        stress = sampled_stress(g, coords, seed=5)
        stats = edge_length_stats(g, coords)
        lines.append(
            f"{name:<22} stress={stress:8.4f} (random {random_stress:6.3f})"
            f" mean-edge={stats['mean']:.4f}"
        )
        # (a) far better than random placement.
        assert stress < 0.5 * random_stress
        # (b) genuinely two-dimensional.
        var = coords.var(axis=0)
        assert var.min() > 1e-4 * var.max()
        # (c) adjacent vertices drawn close relative to the spread.
        assert stats["mean"] < 0.6

    # ParHDE approximates the exact spectral drawing (Figure 1 claim).
    ang = principal_angles(
        layouts["parhde"], layouts["spectral-exact"], g.weighted_degrees
    )
    lines.append(f"\nprincipal angle ParHDE vs exact: {ang[0]:.3f} rad")
    assert ang[0] < 0.5

    # Figure 8: the 10-hop zoom.
    save_drawing(
        zoom.subgraph,
        zoom.layout.coords,
        results_dir / "fig8_zoom.png",
        width=400,
        height=400,
    )
    lines.append(
        f"zoom: {zoom.subgraph.n} vertices within 10 hops of {zoom.center}"
    )
    assert zoom.subgraph.n < g.n

    report("fig1_fig7_drawings", "\n".join(lines))
