"""Section 4.2's cross-paradigm comparison: ParHDE vs force-directed.

The paper estimates ParHDE one to two orders of magnitude faster than
recent force-directed parallelizations (MulMent reports 27 s for a
1M-vertex/3M-edge graph where ParHDE takes a fraction of a second).
We run our Fruchterman-Reingold baseline long enough to reach a usable
layout and compare simulated 28-core times and quality.
"""

from repro import parhde
from repro.baselines import fruchterman_reingold
from repro.metrics import sampled_stress
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger

from conftest import load_cached

FR_ITERS = 500


def _run():
    g = load_cached("barth", scale="small")
    hde = parhde(g, s=10, seed=0)
    led = Ledger()
    with led.phase("FR"):
        fr = fruchterman_reingold(
            g, iterations=FR_ITERS, seed=0, ledger=led
        )
    return g, hde, fr, led


def test_force_directed_comparison(benchmark, report):
    g, hde, fr, led = benchmark.pedantic(_run, rounds=1, iterations=1)

    t_hde = hde.simulated_seconds(BRIDGES_RSM, 28)
    t_fr = simulate_ledger(led, BRIDGES_RSM, 28)
    s_hde = sampled_stress(g, hde.coords, seed=1)
    s_fr = sampled_stress(g, fr.coords, seed=1)

    lines = [
        f"graph: {g.name} (n={g.n}, m={g.m})",
        f"ParHDE:              {t_hde:.6f} s  stress {s_hde:.4f}",
        f"FR ({FR_ITERS} iters):     {t_fr:.6f} s  stress {s_fr:.4f}",
        f"speed advantage:     {t_fr / t_hde:.1f}x"
        " (paper: 1-2 orders of magnitude vs MulMent/ForceAtlas2)",
    ]
    report("force_directed", "\n".join(lines))

    # ParHDE is at least an order of magnitude faster...
    assert t_fr > 10 * t_hde
    # ...while its layout quality is at least comparable.
    assert s_hde < s_fr * 1.5
