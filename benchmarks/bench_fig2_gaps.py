"""Figure 2: adjacency-list gap distribution with Fibonacci binning.

Regenerates the gap histograms for the five large graphs and checks the
trends the paper reads off the chart: urand/kron/twitter all look like
the uniform random baseline, while sk-2005's crawl ordering concentrates
mass at small gaps (the favorable trend for memory locality).
"""

import numpy as np

from repro import datasets
from repro.graph import adjacency_gaps, fibonacci_histogram, miss_rate

from conftest import load_cached


def _histograms():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        out[g.name] = (g, fibonacci_histogram(g))
    return out


def test_fig2_gap_distribution(benchmark, report):
    hists = benchmark.pedantic(_histograms, rounds=1, iterations=1)

    lines = []
    for name, (g, hist) in hists.items():
        assert hist.total == g.nnz - np.count_nonzero(g.degrees)
        lines.append(f"--- {name} (sum c = 2m - n = {hist.total}) ---")
        lines.append(f"{'gap <':>12}  {'count':>12}")
        for edge, count in hist.series():
            lines.append(f"{edge:>12}  {count:>12}")
        lines.append(f"miss-rate estimate: {miss_rate(g):.3f}")
        lines.append("")
    report("fig2_gaps", "\n".join(lines))

    # Qualitative claims of the figure discussion:
    def median_gap(key):
        return float(np.median(adjacency_gaps(load_cached(key))))

    # sk-2005's ordering concentrates gaps near 1; random orders don't.
    assert median_gap("web") <= 4
    assert median_gap("urand") > 20
    # urand and kron (shuffled ids) have the same qualitative profile.
    mr = {k: miss_rate(load_cached(k)) for k in datasets.LARGE_FIVE}
    assert abs(mr["urand"] - mr["kron"]) < 0.15
    assert mr["web"] < 0.5 * mr["urand"]
    assert mr["road"] < 0.5 * mr["urand"]  # row-major road ordering
