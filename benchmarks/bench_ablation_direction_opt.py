"""Ablation: direction-optimizing BFS vs classical top-down.

DESIGN.md calls out the direction-optimizing traversal as ParHDE's
biggest single design choice (inherited from GAP).  This ablation
quantifies it per graph family: the measured work-reduction factor
gamma (Table 1's notation) and the simulated BFS-phase time with and
without the bottom-up phases.  The paper's expectation: large savings on
low-diameter skewed graphs, no benefit on road networks ("not a good
instance for the direction-optimizing BFS").
"""

from repro import datasets
from repro.bfs import bfs_distances, bfs_topdown_only
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger

from conftest import load_cached

SOURCES = (0, 3, 17)


def _run():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        l_opt, l_td = Ledger(), Ledger()
        gammas = []
        with l_opt.phase("BFS"):
            for src in SOURCES:
                _, st = bfs_distances(g, src, ledger=l_opt)
                gammas.append(st.gamma(g.m))
        with l_td.phase("BFS"):
            for src in SOURCES:
                bfs_topdown_only(g, src, ledger=l_td)
        out[g.name] = (g, l_opt, l_td, gammas)
    return out


def test_direction_optimization_ablation(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<18} {'gamma':>7} {'dir-opt(s)':>12} {'top-down(s)':>12}"
        f" {'saving':>7}",
        "-" * 62,
    ]
    savings = {}
    for name, (g, l_opt, l_td, gammas) in runs.items():
        t_opt = simulate_ledger(l_opt, BRIDGES_RSM, 28)
        t_td = simulate_ledger(l_td, BRIDGES_RSM, 28)
        gamma = sum(gammas) / len(gammas)
        paper_name = name.split("[")[0]
        savings[paper_name] = t_td / t_opt
        lines.append(
            f"{name:<18} {gamma:>7.3f} {t_opt:>12.6f} {t_td:>12.6f}"
            f" {t_td / t_opt:>6.1f}x"
        )
    report("ablation_direction_opt", "\n".join(lines))

    # Low-diameter skewed graphs: the work reduction is substantial.
    for fast in ("urand27", "kron27", "twitter7"):
        assert savings[fast] > 1.5
    # road_usa gains nothing (gamma ~ 1: it stays top-down throughout).
    assert savings["road_usa"] < 1.2
    name_road = next(n for n in runs if n.startswith("road"))
    assert sum(runs[name_road][3]) / len(SOURCES) > 0.85
