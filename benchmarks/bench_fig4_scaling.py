"""Figure 4: relative scaling of ParHDE and its phases, 1 -> 28 cores.

Checks the chart's headline claims: urand achieves the best overall and
per-phase scaling (latency-bound, perfectly balanced); road_usa the
worst (per-level barriers against tiny frontiers); DOrtho saturates
early (memory bandwidth, "not much improvement beyond 7 threads");
TripleProd scales better than BFS on every instance.
"""

from repro import datasets, parhde
from repro.parallel import BRIDGES_RSM
from repro.parallel.machine import phase_times
from repro.parallel.report import format_scaling_table

from conftest import load_cached

S = 10
THREADS = [1, 4, 7, 14, 28]
PAPER_OVERALL = {
    "urand27": 24.5, "kron27": 14.8, "sk-2005": 11.3,
    "twitter7": 11.0, "road_usa": 7.1,
}


def _run():
    return {
        load_cached(k).name: parhde(load_cached(k), S, seed=0)
        for k in datasets.LARGE_FIVE
    }


def test_fig4_scaling(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    overall = {}
    per_phase: dict[str, dict[str, dict[int, float]]] = {
        ph: {} for ph in ("BFS", "TripleProd", "DOrtho")
    }
    for name, res in runs.items():
        overall[name] = {
            p: res.simulated_seconds(BRIDGES_RSM, p) for p in THREADS
        }
        for p in THREADS:
            ph = phase_times(res.ledger, BRIDGES_RSM, p)
            for phase in per_phase:
                per_phase[phase].setdefault(name, {})[p] = ph[phase]

    sections = [f"--- Overall ---\n{format_scaling_table(overall)}"]
    for phase, rows in per_phase.items():
        sections.append(f"--- {phase} ---\n{format_scaling_table(rows)}")
    paper_line = "paper 28-core overall: " + "  ".join(
        f"{k}={v}x" for k, v in PAPER_OVERALL.items()
    )
    report("fig4_scaling", "\n\n".join(sections) + "\n\n" + paper_line)

    spd = {
        name: series[1] / series[28] for name, series in overall.items()
    }
    # urand scales best, road worst (the chart's extremes).
    urand = next(k for k in spd if k.startswith("urand"))
    road = next(k for k in spd if k.startswith("road"))
    assert spd[urand] == max(spd.values())
    assert spd[road] == min(spd.values())
    assert spd[urand] > 15
    assert spd[road] < 10

    for name, res in runs.items():
        ph = {
            p: phase_times(res.ledger, BRIDGES_RSM, p) for p in (1, 7, 28)
        }
        # DOrtho saturates: beyond 7 threads, under 40% further gain.
        assert ph[7]["DOrtho"] / ph[28]["DOrtho"] < 1.4
        # TripleProd scales better than BFS (paper: "the LS step is less
        # structure-dependent than BFS").
        tp = ph[1]["TripleProd"] / ph[28]["TripleProd"]
        bfs = ph[1]["BFS"] / ph[28]["BFS"]
        assert tp >= bfs * 0.95
