"""Section 4.5.4: visualizing clustering output on a ParHDE layout.

"We have used the layouts to visualize output of graph partitioning and
clustering algorithms, by using different colors for intra- and
inter-partition edges."  We generate a planted-community graph, detect
the communities with label propagation, and verify that the ParHDE
layout *spatially separates* them — intra-community layout distances are
much smaller than inter-community ones — before writing the colored
drawing.
"""

import numpy as np

from repro import parhde
from repro.drawing import partition_edge_colors, render_layout, write_png
from repro.graph import planted_partition, preprocess
from repro.partition import label_propagation


def _run():
    g = preprocess(
        planted_partition(1500, 3, degree_in=16, degree_out=0.5, seed=0)
    )
    layout = parhde(g, s=12, seed=0)
    lp = label_propagation(g, seed=0)
    return g, layout, lp


def test_clustering_visualization(benchmark, report, results_dir):
    g, layout, lp = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Label propagation recovers the planted structure.
    assert lp.converged
    assert 2 <= lp.communities <= 5

    # Spatial separation in the layout: mean intra-cluster pairwise
    # distance far below inter-cluster.
    rng = np.random.default_rng(1)
    a = rng.integers(0, g.n, size=4000)
    b = rng.integers(0, g.n, size=4000)
    dist = np.sqrt(((layout.coords[a] - layout.coords[b]) ** 2).sum(axis=1))
    same = lp.labels[a] == lp.labels[b]
    intra = float(dist[same].mean())
    inter = float(dist[~same].mean())
    assert intra < 0.5 * inter

    # Cut statistics under the detected clustering.
    u, v = g.edge_list()
    cut = float(np.count_nonzero(lp.labels[u] != lp.labels[v])) / g.m
    assert cut < 0.2

    colors = partition_edge_colors(u, v, lp.labels)
    canvas = render_layout(
        g, layout.coords, width=500, height=500, edge_colors=colors
    )
    write_png(results_dir / "clustering_visualization.png", canvas.pixels)

    report(
        "clustering_viz",
        f"graph: {g.name} n={g.n} m={g.m}\n"
        f"label propagation: {lp.communities} communities in"
        f" {lp.sweeps} sweeps\n"
        f"cut fraction under clustering: {cut:.3f}\n"
        f"mean layout distance: intra {intra:.4f} vs inter {inter:.4f}"
        f" ({inter / intra:.1f}x separation)\n"
        "drawing -> clustering_visualization.png",
    )
