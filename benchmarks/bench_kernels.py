"""Wall-clock microbenchmarks of the core kernels.

Unlike the table/figure benchmarks (which report *simulated* times from
the machine model), these time the actual NumPy kernels on this host
with pytest-benchmark's statistics — the numbers to watch for
performance regressions of the library itself.
"""

import numpy as np
import pytest

from repro.bfs import bfs_distances, bfs_topdown_only
from repro.core.pivots import select_and_traverse
from repro.graph import adjacency_gaps, miss_rate
from repro.linalg import d_orthogonalize, jacobi_eigh, laplacian_spmm
from repro.sssp import delta_stepping

from conftest import load_cached


@pytest.fixture(scope="module")
def kron():
    return load_cached("kron")


@pytest.fixture(scope="module")
def road():
    return load_cached("road")


def test_kernel_bfs_direction_optimizing(benchmark, kron):
    dist, _ = benchmark(bfs_distances, kron, 0)
    assert dist.min() >= 0


def test_kernel_bfs_topdown(benchmark, kron):
    dist, _ = benchmark(bfs_topdown_only, kron, 0)
    assert dist.min() >= 0


def test_kernel_bfs_high_diameter(benchmark, road):
    dist, _ = benchmark(bfs_distances, road, 0)
    assert dist.max() > 20


def test_kernel_sssp_delta_stepping(benchmark, road):
    from repro.graph import random_integer_weights

    g = random_integer_weights(road, 1, 64, seed=0)
    dist, _ = benchmark(delta_stepping, g, 0, 32.0)
    assert np.isfinite(dist).all()


def test_kernel_laplacian_spmm(benchmark, kron, rng=np.random.default_rng(0)):
    X = rng.standard_normal((kron.n, 10))
    out = benchmark(laplacian_spmm, kron, X)
    assert out.shape == X.shape


def test_kernel_dortho_mgs(benchmark, kron):
    B = select_and_traverse(kron, 10, seed=0).distances
    d = kron.weighted_degrees
    res = benchmark(d_orthogonalize, B, d, method="mgs")
    assert res.S.shape[1] >= 2


def test_kernel_dortho_cgs(benchmark, kron):
    B = select_and_traverse(kron, 10, seed=0).distances
    d = kron.weighted_degrees
    res = benchmark(d_orthogonalize, B, d, method="cgs")
    assert res.S.shape[1] >= 2


def test_kernel_jacobi_eigensolve(benchmark):
    rng = np.random.default_rng(0)
    M = rng.standard_normal((50, 50))
    M = (M + M.T) / 2
    evals, _ = benchmark(jacobi_eigh, M)
    np.testing.assert_allclose(evals, np.linalg.eigvalsh(M), atol=1e-7)


def test_kernel_gap_analysis(benchmark, kron):
    def run():
        return adjacency_gaps(kron), miss_rate(kron)

    gaps, mr = benchmark(run)
    assert 0 <= mr <= 1
