"""Wall-clock microbenchmarks of the core kernels.

Unlike the table/figure benchmarks (which report *simulated* times from
the machine model), these time the actual NumPy kernels on this host
with pytest-benchmark's statistics — the numbers to watch for
performance regressions of the library itself.
"""

import numpy as np
import pytest

from repro.bfs import bfs_distances, bfs_topdown_only
from repro.bfs.batched import run_sources_batched
from repro.bfs.runner import run_sources
from repro.core.pivots import select_and_traverse
from repro.graph import adjacency_gaps, miss_rate
from repro.linalg import d_orthogonalize, jacobi_eigh, laplacian_spmm
from repro.sssp import delta_stepping

from conftest import load_cached


@pytest.fixture(scope="module")
def kron():
    return load_cached("kron")


@pytest.fixture(scope="module")
def road():
    return load_cached("road")


def test_kernel_bfs_direction_optimizing(benchmark, kron):
    dist, _ = benchmark(bfs_distances, kron, 0)
    assert dist.min() >= 0


def test_kernel_bfs_topdown(benchmark, kron):
    dist, _ = benchmark(bfs_topdown_only, kron, 0)
    assert dist.min() >= 0


def test_kernel_bfs_high_diameter(benchmark, road):
    dist, _ = benchmark(bfs_distances, road, 0)
    assert dist.max() > 20


def test_kernel_sssp_delta_stepping(benchmark, road):
    from repro.graph import random_integer_weights

    g = random_integer_weights(road, 1, 64, seed=0)
    dist, _ = benchmark(delta_stepping, g, 0, 32.0)
    assert np.isfinite(dist).all()


def test_kernel_laplacian_spmm(benchmark, kron, rng=np.random.default_rng(0)):
    X = rng.standard_normal((kron.n, 10))
    out = benchmark(laplacian_spmm, kron, X)
    assert out.shape == X.shape


def test_kernel_dortho_mgs(benchmark, kron):
    B = select_and_traverse(kron, 10, seed=0).distances
    d = kron.weighted_degrees
    res = benchmark(d_orthogonalize, B, d, method="mgs")
    assert res.S.shape[1] >= 2


def test_kernel_dortho_cgs(benchmark, kron):
    B = select_and_traverse(kron, 10, seed=0).distances
    d = kron.weighted_degrees
    res = benchmark(d_orthogonalize, B, d, method="cgs")
    assert res.S.shape[1] >= 2


def test_kernel_jacobi_eigensolve(benchmark):
    rng = np.random.default_rng(0)
    M = rng.standard_normal((50, 50))
    M = (M + M.T) / 2
    evals, _ = benchmark(jacobi_eigh, M)
    np.testing.assert_allclose(evals, np.linalg.eigvalsh(M), atol=1e-7)


def test_kernel_gap_analysis(benchmark, kron):
    def run():
        return adjacency_gaps(kron), miss_rate(kron)

    gaps, mr = benchmark(run)
    assert 0 <= mr <= 1


def test_kernel_multi_bfs_per_source(benchmark, kron):
    sources = np.arange(10, dtype=np.int64)
    res = benchmark(run_sources, kron, sources)
    assert res.distances.shape == (kron.n, 10)


def test_kernel_multi_bfs_batched(benchmark, kron):
    sources = np.arange(10, dtype=np.int64)
    res = benchmark(run_sources_batched, kron, sources)
    assert res.distances.shape == (kron.n, 10)


# ---------------------------------------------------------------------------
# `python bench_kernels.py --quick` — the kernels-smoke acceptance gate.
#
# Runs 10-source traversal both ways on a >=100k-vertex random graph,
# checks bitwise distance parity, and asserts the batched kernel beats
# per-source by >=2x in *modeled* time (BRIDGES_RSM, p=28) and >=3x in
# wall-clock.  Wired into CI via `make kernels-smoke`.
# ---------------------------------------------------------------------------

def kernels_quick(scale: int = 17, degree: int = 64, s: int = 10) -> int:
    import time

    from repro.graph import preprocess, uniform_random
    from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger

    t0 = time.perf_counter()
    g = preprocess(uniform_random(scale, degree=degree, seed=1),
                   name="kernels-smoke")
    print(f"graph: n={g.n} m={g.nnz} "
          f"(built in {time.perf_counter() - t0:.1f}s)", flush=True)
    assert g.n >= 100_000, "smoke graph must have >=100k vertices"
    sources = np.arange(s, dtype=np.int64)

    led_p = Ledger()
    t0 = time.perf_counter()
    with led_p.phase("BFS"):
        ref = run_sources(g, sources, ledger=led_p)
    wall_p = time.perf_counter() - t0

    led_b = Ledger()
    t0 = time.perf_counter()
    with led_b.phase("BFS"):
        res = run_sources_batched(g, sources, ledger=led_b)
    wall_b = time.perf_counter() - t0

    np.testing.assert_array_equal(res.distances, ref.distances)
    for a, b in zip(res.stats, ref.stats):
        assert a.directions == b.directions
        assert a.edges_examined == b.edges_examined

    sim_p = simulate_ledger(led_p, BRIDGES_RSM, 28)
    sim_b = simulate_ledger(led_b, BRIDGES_RSM, 28)
    wall_x = wall_p / wall_b
    sim_x = sim_p / sim_b
    print(f"per-source: wall {wall_p:.2f}s  modeled {sim_p:.3f}s")
    print(f"batched:    wall {wall_b:.2f}s  modeled {sim_b:.3f}s")
    print(f"speedup:    wall {wall_x:.1f}x  modeled {sim_x:.2f}x")
    assert sim_x >= 2.0, f"modeled speedup {sim_x:.2f}x < 2x"
    assert wall_x >= 3.0, f"wall-clock speedup {wall_x:.1f}x < 3x"
    print("kernels-smoke: OK (distances bitwise equal, speedups hold)")
    return 0


if __name__ == "__main__":
    import sys

    if "--quick" in sys.argv:
        sys.exit(kernels_quick())
    sys.exit("usage: bench_kernels.py --quick "
             "(pytest runs the benchmark tests)")
