"""Tests for the zoom feature (section 4.5.2, Figure 8)."""

import numpy as np
import pytest

from repro import zoom_layout
from repro.bfs import bfs_distances
from repro.core.zoom import khop_subgraph, khop_vertices


def test_khop_matches_bfs_ball(tiny_mesh):
    center, hops = 10, 4
    ids = khop_vertices(tiny_mesh, center, hops)
    dist, _ = bfs_distances(tiny_mesh, center)
    expected = np.flatnonzero((dist >= 0) & (dist <= hops))
    np.testing.assert_array_equal(ids, expected)


def test_khop_zero_hops(tiny_mesh):
    ids = khop_vertices(tiny_mesh, 3, 0)
    np.testing.assert_array_equal(ids, [3])


def test_khop_subgraph_connected(tiny_mesh):
    from repro.graph import is_connected

    sub, ids = khop_subgraph(tiny_mesh, 7, 5)
    sub.validate()
    assert is_connected(sub)
    assert 7 in ids


def test_khop_subgraph_preserves_internal_edges(small_grid):
    sub, ids = khop_subgraph(small_grid, 0, 3)
    pos = {int(v): i for i, v in enumerate(ids)}
    for v in ids:
        for w in small_grid.neighbors(int(v)):
            if int(w) in pos:
                assert sub.has_edge(pos[int(v)], pos[int(w)])


def test_zoom_layout(tiny_mesh):
    res = zoom_layout(tiny_mesh, center=20, hops=10, s=8, seed=0)
    assert res.subgraph.n == len(res.vertex_ids)
    assert res.layout.coords.shape == (res.subgraph.n, 2)
    assert np.all(np.isfinite(res.layout.coords))
    assert res.vertex_ids[res.center_local] == 20


def test_zoom_small_ball_clamps_s(tiny_mesh):
    # A 1-hop ball may have fewer vertices than the default s.
    res = zoom_layout(tiny_mesh, center=0, hops=1, s=50, seed=0)
    assert res.layout.coords.shape[0] == res.subgraph.n


def test_khop_validation(tiny_mesh):
    with pytest.raises(ValueError):
        khop_vertices(tiny_mesh, -1, 2)
    with pytest.raises(ValueError):
        khop_vertices(tiny_mesh, 0, -2)
