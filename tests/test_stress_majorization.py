"""Tests for sparse stress majorization and its ParHDE warm start."""

import numpy as np
import pytest

from repro import parhde
from repro.core.stress_majorization import (
    MajorizationResult,
    build_terms,
    stress_majorization,
)
from repro.graph import cycle_graph, path_graph
from repro.metrics import sampled_stress


class TestTerms:
    def test_edges_included(self, small_grid):
        i, j, d = build_terms(small_grid, pivots=0)
        assert len(i) == small_grid.m
        assert np.all(d == 1.0)

    def test_pivot_rows_included(self, small_grid):
        i, j, d = build_terms(small_grid, pivots=3, seed=0)
        assert len(i) == small_grid.m + 3 * (small_grid.n - 1)
        assert d.max() > 1.0  # long-range targets present

    def test_weighted_targets(self, small_grid):
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 2, 9, seed=0)
        i, j, d = build_terms(g, pivots=0)
        assert d.min() >= 2.0

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            build_terms(small_grid, pivots=-1)


class TestMajorization:
    def test_monotone_decrease(self, tiny_mesh, rng):
        coords0 = rng.standard_normal((tiny_mesh.n, 2))
        res = stress_majorization(tiny_mesh, coords0, max_iter=30, tol=0.0)
        hist = np.array(res.stress_history)
        assert np.all(np.diff(hist) <= 1e-9 * hist[0])

    def test_improves_sampled_stress(self, tiny_mesh, rng):
        coords0 = rng.standard_normal((tiny_mesh.n, 2))
        res = stress_majorization(tiny_mesh, coords0, max_iter=150, seed=1)
        assert sampled_stress(tiny_mesh, res.coords, seed=2) < sampled_stress(
            tiny_mesh, coords0, seed=2
        )

    def test_path_straightens(self):
        g = path_graph(20)
        rng = np.random.default_rng(0)
        res = stress_majorization(
            g, rng.standard_normal((20, 2)), pivots=4, max_iter=500, tol=1e-9
        )
        # A path embeds isometrically: near-zero stress achievable.
        assert sampled_stress(g, res.coords, seed=0) < 0.02

    def test_cycle_rounds(self):
        g = cycle_graph(24)
        rng = np.random.default_rng(1)
        res = stress_majorization(
            g, rng.standard_normal((24, 2)), pivots=6, max_iter=500, tol=1e-9
        )
        # Vertices end near a circle: radii have low variance.
        c = res.coords - res.coords.mean(axis=0)
        radii = np.sqrt((c**2).sum(axis=1))
        assert radii.std() / radii.mean() < 0.2

    def test_zero_iterations(self, tiny_mesh, rng):
        coords0 = rng.standard_normal((tiny_mesh.n, 2))
        res = stress_majorization(tiny_mesh, coords0, max_iter=0)
        # Only the optimal prescale is applied; the shape is untouched.
        alpha = res.coords[1, 0] / coords0[1, 0]
        np.testing.assert_allclose(res.coords, coords0 * alpha)
        assert res.iterations == 0

    def test_validation(self, tiny_mesh):
        with pytest.raises(ValueError):
            stress_majorization(tiny_mesh, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            stress_majorization(
                tiny_mesh, np.zeros((tiny_mesh.n, 2)), max_iter=-1
            )


class TestWarmStart:
    def test_parhde_start_converges_in_fewer_iterations(self, tiny_mesh):
        """The section 4.5.4 suggestion, quantified."""
        hde = parhde(tiny_mesh, s=10, seed=0)
        rng = np.random.default_rng(3)
        kwargs = dict(pivots=8, max_iter=500, tol=1e-4, seed=0)
        warm = stress_majorization(tiny_mesh, hde.coords, **kwargs)
        cold = stress_majorization(
            tiny_mesh, rng.standard_normal((tiny_mesh.n, 2)), **kwargs
        )
        assert warm.initial_stress < cold.initial_stress
        assert warm.iterations <= cold.iterations
        # Warm start reaches at least the cold run's quality.
        assert warm.final_stress <= cold.final_stress * 1.1

    def test_result_properties(self, tiny_mesh):
        hde = parhde(tiny_mesh, s=8, seed=0)
        res = stress_majorization(tiny_mesh, hde.coords, max_iter=5, tol=0.0)
        assert isinstance(res, MajorizationResult)
        assert res.iterations == 5
        assert res.final_stress <= res.initial_stress
