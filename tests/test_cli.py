"""Tests for the command-line interface (in-process)."""

import numpy as np
import pytest

from repro.cli import main


def test_collection(capsys):
    assert main(["collection", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "urand27" in out and "road_usa" in out


def test_gaps(capsys):
    assert main(["gaps", "ecology", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "count" in out


def test_layout_to_files(tmp_path, capsys):
    coords = tmp_path / "coords.txt"
    png = tmp_path / "drawing.png"
    rc = main(
        [
            "layout",
            "barth",
            "--scale",
            "tiny",
            "-s",
            "8",
            "--coords-out",
            str(coords),
            "--png",
            str(png),
            "--width",
            "120",
        ]
    )
    assert rc == 0
    data = np.loadtxt(coords)
    assert data.ndim == 2 and data.shape[1] == 2
    from repro.drawing import read_png

    assert read_png(png).shape == (120, 120, 3)


def test_layout_stdout(capsys):
    assert main(["layout", "ecology", "--scale", "tiny", "-s", "4"]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) > 100


@pytest.mark.parametrize("algo", ["phde", "pivotmds"])
def test_layout_other_algorithms(algo, tmp_path):
    coords = tmp_path / "c.txt"
    rc = main(
        ["layout", "ecology", "--scale", "tiny", "--algo", algo,
         "-s", "6", "--coords-out", str(coords)]
    )
    assert rc == 0
    assert np.loadtxt(coords).shape[1] == 2


def test_bench(capsys):
    rc = main(
        ["bench", "ecology", "--scale", "tiny", "-s", "4",
         "--threads", "1", "4", "28"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "BFS" in out
    assert "p=28" in out


def test_layout_from_edge_list(tmp_path, capsys):
    path = tmp_path / "g.txt"
    lines = [f"{i} {i + 1}" for i in range(30)]
    lines += [f"{i} {i + 2}" for i in range(29)]
    path.write_text("\n".join(lines) + "\n")
    coords = tmp_path / "c.txt"
    rc = main(["layout", str(path), "-s", "4", "--coords-out", str(coords)])
    assert rc == 0
    assert np.loadtxt(coords).shape == (31, 2)


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_partition_command(tmp_path, capsys):
    labels = tmp_path / "parts.txt"
    png = tmp_path / "parts.png"
    rc = main(
        ["partition", "barth", "--scale", "tiny", "-k", "4",
         "-s", "8", "--out", str(labels), "--png", str(png)]
    )
    assert rc == 0
    parts = np.loadtxt(labels)
    assert set(np.unique(parts)) == {0.0, 1.0, 2.0, 3.0}
    from repro.drawing import read_png

    assert read_png(png).shape[2] == 3


def test_partition_refine(capsys):
    rc = main(["partition", "ecology", "--scale", "tiny", "--refine"])
    assert rc == 0
    err = capsys.readouterr().err
    assert "FM: cut" in err


def test_partition_refine_requires_k2():
    with pytest.raises(SystemExit):
        main(["partition", "ecology", "--scale", "tiny", "-k", "3", "--refine"])


def test_zoom_command(tmp_path, capsys):
    png = tmp_path / "zoom.png"
    rc = main(
        ["zoom", "barth", "--scale", "tiny", "--center", "5",
         "--hops", "6", "--png", str(png)]
    )
    assert rc == 0
    assert "within 6 hops of 5" in capsys.readouterr().err
    from repro.drawing import read_png

    assert read_png(png).shape[2] == 3


def test_zoom_coords_stdout(capsys):
    rc = main(["zoom", "ecology", "--scale", "tiny", "--hops", "4", "-s", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) > 5


def test_cluster_spectral(tmp_path, capsys):
    out = tmp_path / "labels.txt"
    rc = main(
        ["cluster", "ecology", "--scale", "tiny", "-k", "3",
         "--out", str(out)]
    )
    assert rc == 0
    labels = np.loadtxt(out)
    assert set(np.unique(labels)) == {0.0, 1.0, 2.0}


def test_cluster_labelprop(capsys):
    rc = main(["cluster", "barth", "--scale", "tiny", "--method", "labelprop"])
    assert rc == 0
    assert "label propagation" in capsys.readouterr().err


def test_cluster_png(tmp_path):
    png = tmp_path / "c.png"
    rc = main(
        ["cluster", "ecology", "--scale", "tiny", "-k", "2", "--png", str(png)]
    )
    assert rc == 0
    from repro.drawing import read_png

    assert read_png(png).shape[2] == 3


def test_export_html(tmp_path, capsys):
    out = tmp_path / "view.html"
    rc = main(["export-html", "barth", "--scale", "tiny", "-s", "6", str(out)])
    assert rc == 0
    text = out.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "addEventListener" in text


def test_reproduce_list(capsys):
    rc = main(["reproduce", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "table3_prior" in out
    assert "fig4_scaling" in out


def test_reproduce_runs_one(capsys):
    import os

    rc = main(["reproduce", "table2", "--scale", "tiny"])
    assert rc == 0
    os.environ.pop("REPRO_BENCH_SCALE", None)


def test_reproduce_unknown_id():
    with pytest.raises(SystemExit):
        main(["reproduce", "nonexistent_experiment_xyz"])


def test_layout_save_and_reuse(tmp_path, capsys):
    """--save-layout writes an archive that zoom/partition/export-html reuse."""
    archive = tmp_path / "barth.npz"
    rc = main(
        ["layout", "barth", "--scale", "tiny", "-s", "6",
         "--save-layout", str(archive)]
    )
    assert rc == 0
    assert archive.exists()
    # Saving suppresses the stdout coordinate dump.
    assert capsys.readouterr().out == ""

    from repro.core import load_layout

    saved = load_layout(archive)
    assert saved.params["s"] == 6 and isinstance(saved.params["s"], int)

    rc = main(
        ["partition", "barth", "--scale", "tiny", "-k", "2",
         "--layout", str(archive)]
    )
    assert rc == 0
    labels = np.loadtxt(
        capsys.readouterr().out.strip().splitlines(), dtype=int
    )
    assert set(labels) == {0, 1}

    rc = main(
        ["zoom", "barth", "--scale", "tiny", "--center", "0", "--hops", "3",
         "--layout", str(archive)]
    )
    assert rc == 0
    coords = np.loadtxt(capsys.readouterr().out.strip().splitlines())
    assert coords.ndim == 2 and coords.shape[1] == 2
    # The zoomed coordinates are the saved layout restricted to the ball.
    from repro import datasets
    from repro.core import khop_subgraph

    g = datasets.load("barth", scale="tiny", seed=0)
    _, ids = khop_subgraph(g, 0, 3)
    np.testing.assert_allclose(coords, saved.coords[ids], atol=1e-6)

    html = tmp_path / "view.html"
    rc = main(
        ["export-html", "barth", "--scale", "tiny", str(html),
         "--layout", str(archive)]
    )
    assert rc == 0
    assert html.read_text().startswith("<!DOCTYPE html>")


def test_layout_flag_rejects_mismatched_graph(tmp_path):
    archive = tmp_path / "eco.npz"
    assert main(
        ["layout", "ecology", "--scale", "tiny", "-s", "4",
         "--save-layout", str(archive)]
    ) == 0
    with pytest.raises(SystemExit):
        main(["zoom", "barth", "--scale", "tiny", "--layout", str(archive)])


def test_stream_wal_journals_and_resumes(tmp_path, capsys):
    events = tmp_path / "events.txt"
    events.write_text("+ 0 20\n+ 1 30\n---\n- 0 1\n")
    wal = tmp_path / "wal"
    rc = main(
        ["stream", "barth", str(events), "--scale", "tiny", "-s", "4",
         "--wal", str(wal)]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "resumed from WAL" not in captured.err
    assert (wal / "quarantine").exists() is False
    assert any(wal.glob("wal-*.log")) or any(wal.glob("snapshot-*.json"))

    # Second run over the same directory resumes at the journaled epoch.
    rc = main(
        ["stream", "barth", str(events), "--scale", "tiny", "-s", "4",
         "--wal", str(wal)]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert f"resumed from WAL {wal} (epoch 2)" in captured.err


def test_serve_rejects_bad_wal_fsync():
    with pytest.raises(SystemExit):
        main(["serve", "--wal-fsync", "sometimes"])
