"""Tests for vertex ordering transforms."""

import numpy as np

from repro.graph import (
    bfs_order,
    bfs_relabel,
    degree_sort_relabel,
    from_edges,
    grid2d,
    random_permutation,
    shuffle_vertices,
    star_graph,
)


def test_random_permutation_is_permutation():
    perm = random_permutation(100, seed=3)
    np.testing.assert_array_equal(np.sort(perm), np.arange(100))


def test_random_permutation_deterministic():
    np.testing.assert_array_equal(
        random_permutation(50, seed=9), random_permutation(50, seed=9)
    )


def test_shuffle_preserves_structure(small_random):
    gs = shuffle_vertices(small_random, seed=2)
    gs.validate()
    assert gs.n == small_random.n
    assert gs.m == small_random.m
    assert sorted(gs.degrees.tolist()) == sorted(small_random.degrees.tolist())


def test_bfs_order_visits_all(small_grid):
    order = bfs_order(small_grid, 0)
    np.testing.assert_array_equal(np.sort(order), np.arange(small_grid.n))


def test_bfs_order_level_monotone(small_grid):
    from repro.bfs import bfs_distances

    order = bfs_order(small_grid, 0)
    dist, _ = bfs_distances(small_grid, 0)
    levels = dist[order]
    assert np.all(np.diff(levels) >= 0)


def test_bfs_order_disconnected_appends_rest():
    g = from_edges(5, [0, 3], [1, 4])
    order = bfs_order(g, 0)
    assert order.tolist()[:2] == [0, 1]
    assert set(order.tolist()) == set(range(5))


def test_bfs_relabel_improves_locality_of_shuffled_grid():
    from repro.graph import miss_rate

    g = shuffle_vertices(grid2d(30, 30), seed=4)
    improved = bfs_relabel(g, 0)
    assert miss_rate(improved) < miss_rate(g)


def test_degree_sort_hubs_first():
    g = star_graph(10)
    out = degree_sort_relabel(g)
    assert out.degrees[0] == 9  # hub now vertex 0
    out2 = degree_sort_relabel(g, descending=False)
    assert out2.degrees[-1] == 9
