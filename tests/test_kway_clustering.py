"""Tests for k-means, spectral clustering, and the multilevel partitioner."""

import numpy as np
import pytest

from repro.graph import (
    grid2d,
    mesh_with_holes,
    planted_partition,
    preprocess,
)
from repro.partition import (
    balance,
    cut_fraction,
    kmeans,
    multilevel_bisection,
    multilevel_kway,
    spectral_clustering,
)


class TestKMeans:
    def test_obvious_clusters(self, rng):
        X = np.concatenate(
            [rng.normal(0, 0.1, (40, 2)), rng.normal(5, 0.1, (60, 2))]
        )
        res = kmeans(X, 2, seed=0)
        assert res.converged
        assert len(set(res.labels[:40])) == 1
        assert len(set(res.labels[40:])) == 1
        assert res.labels[0] != res.labels[50]

    def test_inertia_decreases_with_k(self, rng):
        X = rng.random((200, 2))
        inertias = [kmeans(X, k, seed=0).inertia for k in (1, 2, 4, 8)]
        assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_exactly_k_clusters(self, rng):
        X = rng.random((50, 2))
        res = kmeans(X, 7, seed=1)
        assert len(np.unique(res.labels)) == 7

    def test_k_equals_n(self, rng):
        X = rng.random((6, 2))
        res = kmeans(X, 6, seed=0)
        assert res.inertia < 1e-9

    def test_k1_center_is_mean(self, rng):
        X = rng.random((30, 3))
        res = kmeans(X, 1, seed=0)
        np.testing.assert_allclose(res.centers[0], X.mean(axis=0))

    def test_deterministic(self, rng):
        X = rng.random((80, 2))
        a = kmeans(X, 3, seed=9)
        b = kmeans(X, 3, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.random((5, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(rng.random((5, 2)), 6)
        with pytest.raises(ValueError):
            kmeans(rng.random(5), 2)


class TestSpectralClustering:
    def test_recovers_planted_communities(self):
        g = preprocess(
            planted_partition(900, 3, degree_in=16, degree_out=0.5, seed=0)
        )
        res = spectral_clustering(g, 3, seed=0)
        truth = np.arange(g.n) * 3 // g.n
        agree = sum(
            int(np.bincount(truth[res.labels == c]).max())
            for c in range(3)
            if (res.labels == c).any()
        )
        assert agree / g.n > 0.7

    def test_cut_far_below_random(self):
        g = preprocess(
            planted_partition(600, 2, degree_in=14, degree_out=0.8, seed=1)
        )
        res = spectral_clustering(g, 2, seed=0)
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 2, size=g.n)
        assert cut_fraction(g, res.labels) < 0.5 * cut_fraction(g, rand)

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            spectral_clustering(small_grid, 0)


class TestMultilevelPartitioner:
    def test_bisection_quality(self):
        g = preprocess(mesh_with_holes(40, 40))
        res = multilevel_bisection(g, seed=0)
        assert res.levels_used >= 2
        assert balance(res.parts, 2) < 1.25
        # A mesh bisector cut is O(sqrt(n)); allow generous slack.
        assert res.cut < 4 * np.sqrt(g.n)

    def test_bisection_beats_random(self, tiny_mesh):
        res = multilevel_bisection(tiny_mesh, seed=0)
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 2, size=tiny_mesh.n)
        from repro.partition import edge_cut

        assert res.cut < 0.4 * edge_cut(tiny_mesh, rand)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_kway(self, k):
        g = grid2d(24, 24)
        res = multilevel_kway(g, k, seed=0)
        assert len(np.unique(res.parts)) == k
        assert balance(res.parts, k) < 1.35
        assert cut_fraction(g, res.parts) < 0.25

    def test_k1_trivial(self, small_grid):
        res = multilevel_kway(small_grid, 1)
        assert np.all(res.parts == 0)
        assert res.cut == 0.0

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            multilevel_kway(small_grid, 0)
        with pytest.raises(ValueError):
            multilevel_kway(small_grid, small_grid.n + 1)
