"""Tests for subspace iteration, diameter estimation, BFS tracing,
neighborhood preservation, layout serialization, and SVG/HTML export."""

import numpy as np
import pytest

from repro import parhde
from repro.baselines import spectral_layout
from repro.bfs import bfs_distances, format_trace, trace_bfs
from repro.core import (
    load_layout,
    parhde_refined_subspace,
    save_layout,
    subspace_iterate,
)
from repro.graph import (
    cycle_graph,
    double_sweep_lower_bound,
    eccentricity_bounds,
    grid2d,
    path_graph,
    star_graph,
)
from repro.metrics import neighborhood_preservation, principal_angles


class TestSubspaceIteration:
    def test_keeps_d_orthonormal(self, tiny_mesh):
        base = parhde(tiny_mesh, s=10, seed=0)
        S = subspace_iterate(tiny_mesh, base.S, rounds=2)
        d = tiny_mesh.weighted_degrees
        G = S.T @ (d[:, None] * S)
        np.testing.assert_allclose(G, np.eye(S.shape[1]), atol=1e-8)
        np.testing.assert_allclose(S.T @ d, 0.0, atol=1e-8)

    def test_zero_rounds_identity(self, tiny_mesh):
        base = parhde(tiny_mesh, s=8, seed=0)
        S = subspace_iterate(tiny_mesh, base.S, rounds=0)
        np.testing.assert_allclose(S, base.S)

    def test_improves_spectral_approximation(self, tiny_mesh):
        """Each round rotates the layout toward the exact eigenvectors."""
        exact = spectral_layout(tiny_mesh, 2, tol=1e-10, seed=0)
        d = tiny_mesh.weighted_degrees
        plain = parhde(tiny_mesh, s=10, seed=0)
        refined = parhde_refined_subspace(tiny_mesh, s=10, rounds=6, seed=0)
        a_plain = principal_angles(plain.coords, exact.coords, d)[0]
        a_ref = principal_angles(refined.coords, exact.coords, d)[0]
        assert a_ref < a_plain

    def test_eigenvalue_estimates_improve(self, tiny_mesh):
        plain = parhde(tiny_mesh, s=10, seed=0)
        refined = parhde_refined_subspace(tiny_mesh, s=10, rounds=4, seed=0)
        # Projected Rayleigh values can only drop toward the true ones.
        assert refined.eigenvalues.sum() <= plain.eigenvalues.sum() + 1e-12

    def test_phase_recorded(self, tiny_mesh):
        res = parhde_refined_subspace(tiny_mesh, s=8, rounds=1, seed=0)
        assert "SubspaceIter" in res.ledger.phases()
        assert res.params["rounds"] == 1

    def test_validation(self, tiny_mesh):
        base = parhde(tiny_mesh, s=6, seed=0)
        with pytest.raises(ValueError):
            subspace_iterate(tiny_mesh, base.S, rounds=-1)
        with pytest.raises(ValueError):
            subspace_iterate(tiny_mesh, np.ones((3, 2)), rounds=1)


class TestDiameter:
    def test_path_exact(self):
        est = double_sweep_lower_bound(path_graph(30), start=13)
        assert est.lower_bound == 29  # exact on trees

    def test_cycle_exact(self):
        est = double_sweep_lower_bound(cycle_graph(20))
        assert est.lower_bound == 10

    def test_star(self):
        est = double_sweep_lower_bound(star_graph(10), start=0)
        assert est.lower_bound == 2

    def test_grid_bound_sane(self):
        g = grid2d(10, 15)
        est = eccentricity_bounds(g, sweeps=4, seed=0)
        true_diam = 9 + 14
        assert est.lower_bound <= true_diam
        assert est.lower_bound >= true_diam - 2  # farthest-first is sharp here
        assert len(est.sources) == len(est.eccentricities)

    def test_bounds_never_exceed_bfs_ecc(self, small_random):
        est = eccentricity_bounds(small_random, sweeps=3, seed=1)
        for src, ecc in zip(est.sources, est.eccentricities):
            dist, _ = bfs_distances(small_random, src)
            assert ecc == dist.max()

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            double_sweep_lower_bound(small_grid, start=-1)
        with pytest.raises(ValueError):
            eccentricity_bounds(small_grid, sweeps=0)


class TestTrace:
    def test_trace_matches_bfs(self, small_random):
        dist_ref, stats = bfs_distances(small_random, 4)
        dist, traces = trace_bfs(small_random, 4)
        np.testing.assert_array_equal(dist, dist_ref)
        assert [t.direction for t in traces] == stats.directions
        assert sum(t.edges_examined for t in traces) == stats.edges_examined

    def test_discovered_counts_sum_to_reached(self, small_grid):
        dist, traces = trace_bfs(small_grid, 0)
        assert sum(t.discovered for t in traces) == small_grid.n - 1

    def test_frontier_sizes_chain(self, path10):
        _, traces = trace_bfs(path10, 0)
        # Each level's frontier is the previous level's discoveries.
        for prev, cur in zip(traces, traces[1:]):
            assert cur.frontier_size == prev.discovered

    def test_format(self, small_grid):
        _, traces = trace_bfs(small_grid, 0)
        text = format_trace(traces)
        assert "lvl" in text and "total examined" in text
        assert len(text.splitlines()) == len(traces) + 3


class TestNeighborhoodPreservation:
    def test_perfect_grid_embedding(self):
        g = grid2d(12, 12)
        ids = np.arange(g.n)
        coords = np.column_stack([ids // 12, ids % 12]).astype(float)
        # The natural embedding has every graph neighbor among the
        # nearest layout points.
        assert neighborhood_preservation(g, coords, sample=None) > 0.9

    def test_random_layout_poor(self, tiny_mesh, rng):
        coords = rng.standard_normal((tiny_mesh.n, 2))
        assert neighborhood_preservation(tiny_mesh, coords) < 0.2

    def test_parhde_beats_random(self, tiny_mesh, rng):
        good = parhde(tiny_mesh, s=10, seed=0).coords
        bad = rng.standard_normal((tiny_mesh.n, 2))
        assert neighborhood_preservation(
            tiny_mesh, good, seed=1
        ) > 2 * neighborhood_preservation(tiny_mesh, bad, seed=1)

    def test_sampling_deterministic(self, tiny_mesh):
        coords = parhde(tiny_mesh, s=8, seed=0).coords
        a = neighborhood_preservation(tiny_mesh, coords, sample=100, seed=3)
        b = neighborhood_preservation(tiny_mesh, coords, sample=100, seed=3)
        assert a == b

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            neighborhood_preservation(small_grid, np.zeros((3, 2)))


class TestSerialize:
    def test_roundtrip(self, tiny_mesh, tmp_path):
        res = parhde(tiny_mesh, s=8, seed=0)
        p = tmp_path / "layout.npz"
        save_layout(res, p)
        back = load_layout(p)
        np.testing.assert_array_equal(back.coords, res.coords)
        np.testing.assert_array_equal(back.B, res.B)
        np.testing.assert_array_equal(back.S, res.S)
        np.testing.assert_array_equal(back.pivots, res.pivots)
        assert back.algorithm == res.algorithm
        assert back.params["s"] == 8
        assert back.dropped == res.dropped

    def test_bad_version(self, tiny_mesh, tmp_path):
        res = parhde(tiny_mesh, s=6, seed=0)
        p = tmp_path / "layout.npz"
        save_layout(res, p)
        import numpy as np_

        data = dict(np_.load(p, allow_pickle=False))
        data["format_version"] = np_.int64(99)
        np_.savez_compressed(p, **data)
        with pytest.raises(ValueError, match="version"):
            load_layout(p)


class TestSVGExport:
    def test_svg_structure(self, tiny_mesh, tmp_path):
        from repro.drawing import write_svg

        res = parhde(tiny_mesh, s=8, seed=0)
        p = tmp_path / "mesh.svg"
        write_svg(tiny_mesh, res.coords, p, width=300, height=300)
        text = p.read_text()
        assert text.startswith("<svg")
        assert text.count("<line") == tiny_mesh.m
        assert 'viewBox="0 0 300 300"' in text

    def test_svg_max_edges(self, tiny_mesh, tmp_path):
        from repro.drawing import write_svg

        res = parhde(tiny_mesh, s=8, seed=0)
        p = tmp_path / "mesh.svg"
        write_svg(tiny_mesh, res.coords, p, max_edges=100)
        assert p.read_text().count("<line") == 100

    def test_interactive_html(self, tiny_mesh, tmp_path):
        from repro.drawing import write_interactive_html

        res = parhde(tiny_mesh, s=8, seed=0)
        p = tmp_path / "view.html"
        write_interactive_html(
            tiny_mesh, res.coords, p, title="test view", max_vertices=200
        )
        text = p.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "test view" in text
        assert text.count("<circle") == 200
        assert "addEventListener" in text  # pan/zoom script present
        assert f"m={tiny_mesh.m}" in text
