"""Final coverage batch: remaining uncovered paths across subsystems."""

import numpy as np
import pytest

from repro import parhde
from repro.core import parhde_refined_subspace, subspace_iterate
from repro.graph import grid2d, random_integer_weights
from repro.parallel import BRIDGES_RSM, KernelCost, Ledger, PhaseTotals


class TestSubspaceIterationWeighted:
    def test_weighted_graph_rounds(self, small_grid):
        g = random_integer_weights(small_grid, 1, 6, seed=0)
        res = parhde_refined_subspace(
            g, s=6, rounds=2, seed=0, weighted=True
        )
        assert np.all(np.isfinite(res.coords))
        d = g.weighted_degrees
        np.testing.assert_allclose(res.coords.T @ d, 0.0, atol=1e-6)

    def test_rank_drop_tolerated(self, small_grid):
        base = parhde(small_grid, s=6, seed=0)
        # Duplicate a column: the block loses rank but iteration survives.
        S = np.column_stack([base.S, base.S[:, 0]])
        out = subspace_iterate(small_grid, S, rounds=1)
        assert out.shape[1] <= S.shape[1]
        d = small_grid.weighted_degrees
        G = out.T @ (d[:, None] * out)
        np.testing.assert_allclose(G, np.eye(out.shape[1]), atol=1e-8)


class TestMachineTimeTotals:
    def test_combines_parallel_and_sequential(self):
        tot = PhaseTotals(
            parallel=KernelCost(work=28e9),
            sequential=KernelCost(work=1e9),
        )
        t28 = BRIDGES_RSM.time_totals(tot, 28)
        # parallel part: 1e9 ops/core-rate; sequential: same again.
        expected = 28e9 / (28 * 0.55e9) + 1e9 / 0.55e9
        assert t28 == pytest.approx(expected, rel=1e-6)

    def test_combined_property(self):
        tot = PhaseTotals(
            parallel=KernelCost(work=1), sequential=KernelCost(flops=2)
        )
        assert tot.combined.work == 1 and tot.combined.flops == 2


class TestCLIBenchMachines:
    @pytest.mark.parametrize("machine", ["bridges-esm", "laptop"])
    def test_bench_machine_option(self, machine, capsys):
        from repro.cli import main

        rc = main(
            ["bench", "ecology", "--scale", "tiny", "-s", "4",
             "--machine", machine, "--threads", "1", "4"]
        )
        assert rc == 0
        assert "p=4" in capsys.readouterr().out


class TestNeighborhoodWeighted:
    def test_weighted_graph_supported(self, small_grid, rng):
        from repro.metrics import neighborhood_preservation

        g = random_integer_weights(small_grid, 1, 5, seed=0)
        coords = rng.random((g.n, 2))
        score = neighborhood_preservation(g, coords, sample=50)
        assert 0.0 <= score <= 1.0


class TestLedgerPhasesAPI:
    def test_current_phase_outside_context(self):
        led = Ledger()
        assert led.current_phase == "Other"

    def test_phase_reentry_order(self):
        led = Ledger()
        with led.phase("B"):
            led.add(KernelCost(work=1))
        with led.phase("A"):
            led.add(KernelCost(work=1))
        with led.phase("B"):
            led.add(KernelCost(work=1))
        assert led.phases() == ["B", "A"]  # first-recorded order, no dup


class TestCoupledVariantWithLedger:
    def test_external_ledger_respected(self, tiny_mesh):
        from repro import parhde_coupled

        led = Ledger()
        res = parhde_coupled(tiny_mesh, s=6, seed=0, ledger=led)
        assert res.ledger is led
        assert {"BFS", "DOrtho"} <= set(led.phases())


class TestRenderEdgeColorSubsampleAlignment:
    def test_colors_follow_subsample(self, tiny_mesh, rng):
        """Subsampling edges must subsample their colors identically."""
        from repro.drawing import render_layout

        coords = rng.random((tiny_mesh.n, 2))
        u, v = tiny_mesh.edge_list()
        colors = np.zeros((len(u), 3), dtype=np.uint8)
        colors[:, 0] = 255  # all red
        canvas = render_layout(
            tiny_mesh, coords, width=60, height=60,
            edge_colors=colors, max_edges=100, seed=1,
        )
        # Only red ink (plus white background) may appear.
        px = canvas.pixels.reshape(-1, 3)
        inked = px[np.any(px != 255, axis=1)]
        assert len(inked) > 0
        assert np.all(inked[:, 0] == 255)
        assert np.all(inked[:, 1] == 0)


class TestDeltaSteppingMaxBuckets:
    def test_bucket_cap_stops_early(self, small_grid):
        g = random_integer_weights(small_grid, 1, 64, seed=0)
        dist, stats = __import__("repro").sssp.delta_stepping(
            g, 0, 4.0, max_buckets=2
        )
        assert stats.buckets_processed == 2
        assert np.isinf(dist).any()  # unfinished by construction
