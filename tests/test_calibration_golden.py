"""Golden-band regression tests for the calibrated machine model.

The benchmark suite asserts the paper's claims in detail; these compact
checks guard the same headline *shapes* from inside ``pytest tests/`` so
an accidental change to kernels or calibration constants cannot slip
through a tests-green run.  Bands are deliberately wide — they encode
"the story still holds", not exact numbers.
"""

import numpy as np
import pytest

from repro import datasets, parhde
from repro.graph import shuffle_vertices
from repro.parallel import BRIDGES_RSM
from repro.parallel.machine import phase_times


@pytest.fixture(scope="module")
def urand_run():
    g = datasets.load("urand", scale="medium")
    return g, parhde(g, s=10, seed=0)


@pytest.fixture(scope="module")
def road_run():
    g = datasets.load("road", scale="medium")
    return g, parhde(g, s=10, seed=0)


def test_urand_speedup_band(urand_run):
    _, res = urand_run
    spd = res.speedup(BRIDGES_RSM, 28)
    assert 18 < spd <= 28.5  # paper: 24.5x


def test_road_speedup_band(road_run):
    _, res = road_run
    spd = res.speedup(BRIDGES_RSM, 28)
    assert 3 < spd < 12  # paper: 7.1x


def test_urand_outscales_road(urand_run, road_run):
    assert urand_run[1].speedup(BRIDGES_RSM, 28) > road_run[1].speedup(
        BRIDGES_RSM, 28
    )


def test_dortho_saturation(urand_run):
    _, res = urand_run
    d7 = phase_times(res.ledger, BRIDGES_RSM, 7)["DOrtho"]
    d28 = phase_times(res.ledger, BRIDGES_RSM, 28)["DOrtho"]
    assert d7 / d28 < 1.4  # "not much improvement beyond 7 threads"


def test_road_is_bfs_dominated(road_run):
    _, res = road_run
    ph = res.phase_seconds(BRIDGES_RSM, 28)
    assert ph["BFS"] > 0.5 * sum(ph.values())


def test_prior_comparison_winner(urand_run):
    from repro.baselines import prior_hde
    from repro.parallel import BRIDGES_ESM

    g, res = urand_run
    prior = prior_hde(g, s=10, seed=0)
    ratio = prior.simulated_seconds(BRIDGES_ESM, 80) / res.simulated_seconds(
        BRIDGES_ESM, 80
    )
    assert ratio > 10  # paper: 18x; ours lands higher (EXPERIMENTS.md)


def test_shuffle_slowdown_band():
    g = datasets.load("web", scale="medium")
    gs = shuffle_vertices(g, seed=3)
    a = parhde(g, s=10, seed=0)
    b = parhde(gs, s=10, seed=0)
    ratio = b.simulated_seconds(BRIDGES_RSM, 28) / a.simulated_seconds(
        BRIDGES_RSM, 28
    )
    assert 1.8 < ratio < 8  # paper: 3.5x overall


def test_direction_optimization_gamma():
    g = datasets.load("kron", scale="medium")
    res = parhde(g, s=5, seed=0)
    gammas = [st.gamma(g.m) for st in res.bfs_stats]
    assert np.mean(gammas) < 0.3  # large work reduction on skewed graphs
