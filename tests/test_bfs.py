"""Tests for the direction-optimizing BFS against independent oracles."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import (
    bfs_distances,
    bfs_topdown_only,
    bitmap_to_queue,
    bottomup_step,
    gather_neighbors,
    queue_to_bitmap,
    run_sources,
    run_sources_concurrent,
    topdown_step,
)
from repro.graph import from_edges, path_graph, star_graph
from repro.parallel import Ledger

from conftest import random_connected_graph


def nx_distances(g, source):
    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    u, v = g.edge_list()
    G.add_edges_from(zip(u.tolist(), v.tolist()))
    lengths = nx.single_source_shortest_path_length(G, source)
    out = np.full(g.n, -1, dtype=np.int32)
    for node, d in lengths.items():
        out[node] = d
    return out


class TestBFSCorrectness:
    @pytest.mark.parametrize("source", [0, 3, 77])
    def test_matches_networkx(self, small_random, source):
        dist, stats = bfs_distances(small_random, source)
        np.testing.assert_array_equal(dist, nx_distances(small_random, source))
        assert stats.reached == small_random.n

    def test_grid(self, small_grid):
        dist, _ = bfs_distances(small_grid, 0)
        np.testing.assert_array_equal(dist, nx_distances(small_grid, 0))

    def test_mesh(self, tiny_mesh):
        dist, _ = bfs_distances(tiny_mesh, 5)
        np.testing.assert_array_equal(dist, nx_distances(tiny_mesh, 5))

    def test_path_distances(self, path10):
        dist, stats = bfs_distances(path10, 0)
        np.testing.assert_array_equal(dist, np.arange(10))
        # 9 productive levels + the final empty-frontier check level.
        assert stats.levels == 10

    def test_star_two_levels(self):
        g = star_graph(20)
        dist, stats = bfs_distances(g, 0)
        assert dist[0] == 0
        assert np.all(dist[1:] == 1)

    def test_unreachable_marked(self):
        g = from_edges(4, [0], [1])
        dist, stats = bfs_distances(g, 0)
        assert dist[2] == -1 and dist[3] == -1
        assert stats.reached == 2

    def test_source_out_of_range(self, path10):
        with pytest.raises(ValueError):
            bfs_distances(path10, 10)

    def test_topdown_only_same_distances(self, small_random):
        d1, _ = bfs_distances(small_random, 9)
        d2, s2 = bfs_topdown_only(small_random, 9)
        np.testing.assert_array_equal(d1, d2)
        assert s2.edges_bottomup == 0

    def test_direction_optimization_reduces_edges(self, small_random):
        _, st_opt = bfs_distances(small_random, 0)
        _, st_td = bfs_topdown_only(small_random, 0)
        assert st_opt.edges_examined < st_td.edges_examined
        assert "bu" in st_opt.directions

    def test_topdown_examines_all_edges(self, small_random):
        _, st_td = bfs_topdown_only(small_random, 0)
        assert st_td.edges_examined == small_random.nnz

    def test_gamma_bounds(self, small_random):
        _, stats = bfs_distances(small_random, 0)
        assert 0 < stats.gamma(small_random.m) <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 60),
    extra=st.integers(0, 100),
    seed=st.integers(0, 10_000),
)
def test_bfs_property_vs_dijkstra(n, extra, seed):
    """Property: BFS hop counts equal unit-weight Dijkstra distances."""
    from repro.sssp import dijkstra

    g = random_connected_graph(n, extra, seed)
    src = seed % n
    dist, _ = bfs_distances(g, src)
    ref = dijkstra(g, src)
    np.testing.assert_allclose(dist.astype(float), ref)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 50), extra=st.integers(0, 60), seed=st.integers(0, 9999))
def test_bfs_level_consistency(n, extra, seed):
    """Property: adjacent vertices' BFS levels differ by at most 1."""
    g = random_connected_graph(n, extra, seed)
    dist, _ = bfs_distances(g, 0)
    u, v = g.edge_list()
    assert np.all(np.abs(dist[u] - dist[v]) <= 1)


class TestSteps:
    def test_gather_neighbors(self, small_grid):
        nbrs, counts, starts = gather_neighbors(
            small_grid, np.array([0, 5, 10])
        )
        assert len(nbrs) == counts.sum()
        for i, v in enumerate([0, 5, 10]):
            seg = nbrs[starts[i] : starts[i] + counts[i]]
            np.testing.assert_array_equal(seg, small_grid.neighbors(v))

    def test_gather_empty(self, small_grid):
        nbrs, counts, starts = gather_neighbors(small_grid, np.array([], dtype=np.int64))
        assert len(nbrs) == 0 and len(counts) == 0

    def test_bitmap_roundtrip(self):
        q = np.array([1, 4, 7], dtype=np.int64)
        np.testing.assert_array_equal(bitmap_to_queue(queue_to_bitmap(q, 10)), q)

    def test_topdown_step_discovers_level1(self, small_grid):
        dist = np.full(small_grid.n, -1, dtype=np.int32)
        dist[0] = 0
        nxt, edges, cost = topdown_step(
            small_grid, np.array([0], dtype=np.int64), dist, 1, 0.5
        )
        np.testing.assert_array_equal(np.sort(nxt), np.sort(small_grid.neighbors(0)))
        assert edges == small_grid.degree(0)
        assert cost.regions == 1

    def test_bottomup_step_equivalent(self, small_grid):
        # Run one top-down level, then check bottom-up finds the same set.
        d1 = np.full(small_grid.n, -1, dtype=np.int32)
        d1[0] = 0
        frontier = np.array([0], dtype=np.int64)
        nxt_td, _, _ = topdown_step(small_grid, frontier, d1, 1, 0.5)

        d2 = np.full(small_grid.n, -1, dtype=np.int32)
        d2[0] = 0
        nxt_bu, edges, _ = bottomup_step(
            small_grid, queue_to_bitmap(frontier, small_grid.n), d2, 1, 0.5
        )
        np.testing.assert_array_equal(np.sort(nxt_td), np.sort(nxt_bu))
        np.testing.assert_array_equal(d1, d2)

    def test_bottomup_early_exit_counts_less(self, small_random):
        # With a huge frontier, early exit must scan fewer edges than nnz.
        dist = np.full(small_random.n, -1, dtype=np.int32)
        half = small_random.n // 2
        dist[:half] = 1
        bitmap = np.zeros(small_random.n, dtype=bool)
        bitmap[:half] = True
        _, edges, _ = bottomup_step(small_random, bitmap, dist, 2, 0.5)
        unvisited_edges = int(small_random.degrees[half:].sum())
        assert edges < unvisited_edges


class TestMultiSource:
    def test_run_sources_columns(self, small_random):
        srcs = np.array([0, 5, 9])
        res = run_sources(small_random, srcs)
        assert res.distances.shape == (small_random.n, 3)
        for i, s in enumerate(srcs):
            ref, _ = bfs_distances(small_random, int(s))
            np.testing.assert_allclose(res.distances[:, i], ref.astype(float))

    def test_concurrent_same_result(self, small_random):
        srcs = np.array([2, 8, 33])
        a = run_sources(small_random, srcs)
        b = run_sources_concurrent(small_random, srcs)
        np.testing.assert_allclose(a.distances, b.distances)

    def test_concurrent_fewer_regions(self, small_random):
        srcs = np.array([2, 8, 33])
        la, lb = Ledger(), Ledger()
        with la.phase("BFS"):
            run_sources(small_random, srcs, ledger=la)
        with lb.phase("BFS"):
            run_sources_concurrent(small_random, srcs, ledger=lb)
        assert lb.total().parallel.regions < la.total().parallel.regions


class TestCosts:
    def test_ledger_records_per_level(self, small_random):
        led = Ledger()
        with led.phase("BFS"):
            _, stats = bfs_distances(small_random, 0, ledger=led)
        tot = led.total().parallel
        assert tot.regions >= stats.levels
        assert tot.work > 0

    def test_sequential_flag(self, small_random):
        led = Ledger()
        with led.phase("BFS"):
            bfs_distances(small_random, 0, ledger=led, sequential=True)
        tot = led.total()
        assert tot.parallel.is_zero
        assert tot.sequential.work > 0
        assert tot.sequential.regions == 0


class TestParents:
    def test_valid_tree(self, small_random):
        from repro.bfs import bfs_parents, validate_bfs_tree

        dist, parent, _ = bfs_parents(small_random, 7)
        validate_bfs_tree(small_random, 7, dist, parent)

    def test_tree_on_mesh(self, tiny_mesh):
        from repro.bfs import bfs_parents, validate_bfs_tree

        dist, parent, _ = bfs_parents(tiny_mesh, 0)
        validate_bfs_tree(tiny_mesh, 0, dist, parent)

    def test_unreachable_have_no_parent(self):
        from repro.bfs import bfs_parents

        g = from_edges(4, [0], [1])
        dist, parent, _ = bfs_parents(g, 0)
        assert parent[2] == -1 and parent[3] == -1
        assert parent[0] == 0 and parent[1] == 0

    def test_path_parent_chain(self, path10):
        from repro.bfs import bfs_parents

        _, parent, _ = bfs_parents(path10, 0)
        np.testing.assert_array_equal(
            parent, [0] + list(range(9))
        )

    def test_validator_catches_bad_tree(self, small_grid):
        from repro.bfs import bfs_parents, validate_bfs_tree

        dist, parent, _ = bfs_parents(small_grid, 0)
        bad = parent.copy()
        bad[5] = 5  # not a valid parent of vertex 5
        with pytest.raises(ValueError):
            validate_bfs_tree(small_grid, 0, dist, bad)
