"""Tests for the partitioning subsystem (section 4.5.4)."""

import numpy as np
import pytest

from repro import parhde
from repro.graph import from_edges, grid2d, random_integer_weights
from repro.partition import (
    balance,
    boundary_vertices,
    conductance,
    coordinate_band,
    coordinate_bisection,
    cut_fraction,
    edge_cut,
    fm_refine,
    median_split,
    part_sizes,
    spectral_bisection,
)


class TestMetrics:
    def test_edge_cut_counts(self):
        g = from_edges(4, [0, 1, 2], [1, 2, 3])  # path
        assert edge_cut(g, np.array([0, 0, 1, 1])) == 1.0
        assert edge_cut(g, np.array([0, 1, 0, 1])) == 3.0
        assert edge_cut(g, np.zeros(4, dtype=np.int64)) == 0.0

    def test_edge_cut_weighted(self):
        g = from_edges(3, [0, 1], [1, 2], weights=[5.0, 2.0])
        assert edge_cut(g, np.array([0, 1, 1])) == 5.0
        assert edge_cut(g, np.array([0, 0, 1])) == 2.0

    def test_cut_fraction(self, small_grid):
        parts = np.zeros(small_grid.n, dtype=np.int64)
        parts[: small_grid.n // 2] = 1
        assert 0 < cut_fraction(small_grid, parts) < 1

    def test_balance_and_sizes(self):
        parts = np.array([0, 0, 0, 1])
        np.testing.assert_array_equal(part_sizes(parts), [3, 1])
        assert balance(parts) == pytest.approx(1.5)
        assert balance(np.array([0, 1, 0, 1])) == 1.0

    def test_conductance_bounds(self, small_grid):
        parts = median_split(np.arange(small_grid.n, dtype=float))
        c = conductance(small_grid, parts)
        assert 0 <= c <= 1

    def test_length_mismatch(self, small_grid):
        with pytest.raises(ValueError):
            edge_cut(small_grid, np.zeros(3, dtype=np.int64))


class TestGeometric:
    def test_grid_natural_cut(self):
        g = grid2d(16, 16)
        ids = np.arange(g.n)
        coords = np.column_stack([ids // 16, ids % 16]).astype(float)
        parts = coordinate_bisection(g, coords, 2)
        # Perfect balance and the minimal straight cut (16 edges).
        assert balance(parts, 2) == 1.0
        assert edge_cut(g, parts) == 16.0

    @pytest.mark.parametrize("k", [2, 3, 4, 7])
    def test_kway_balance(self, tiny_mesh, k):
        res = parhde(tiny_mesh, s=10, seed=0)
        parts = coordinate_bisection(tiny_mesh, res.coords, k)
        assert len(np.unique(parts)) == k
        assert balance(parts, k) < 1.1

    def test_k_one(self, small_grid):
        parts = coordinate_bisection(small_grid, np.zeros((small_grid.n, 2)), 1)
        assert np.all(parts == 0)

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            coordinate_bisection(small_grid, np.zeros((3, 2)), 2)
        with pytest.raises(ValueError):
            coordinate_bisection(small_grid, np.zeros((small_grid.n, 2)), 0)

    def test_layout_cut_beats_random_assignment(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        parts = coordinate_bisection(tiny_mesh, res.coords, 2)
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 2, size=tiny_mesh.n)
        assert edge_cut(tiny_mesh, parts) < 0.5 * edge_cut(tiny_mesh, rand)


class TestSpectral:
    def test_median_split_balanced(self, rng):
        parts = median_split(rng.random(101))
        assert abs(int(part_sizes(parts)[0]) - 50) <= 1

    def test_grid_spectral_cut_quality(self):
        g = grid2d(12, 24)  # elongated: the best cut crosses the short side
        parts = spectral_bisection(g, s=12, seed=0)
        assert balance(parts, 2) == 1.0
        # Near-optimal: the minimum balanced cut is 12.
        assert edge_cut(g, parts) <= 30

    def test_reuses_coords(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        a = spectral_bisection(tiny_mesh, coords=res.coords)
        b = spectral_bisection(tiny_mesh, coords=res.coords)
        np.testing.assert_array_equal(a, b)


class TestFM:
    def test_improves_bad_partition(self, small_grid):
        rng = np.random.default_rng(1)
        parts = rng.integers(0, 2, size=small_grid.n)
        # Make it balanced enough to be a legal starting point.
        refined, stats = fm_refine(small_grid, parts, max_passes=10)
        assert stats.cut_after <= stats.cut_before
        assert stats.improvement > 0
        assert balance(refined, 2) < 1.2

    def test_optimal_cut_untouched(self):
        g = grid2d(8, 16)
        ids = np.arange(g.n)
        parts = (ids % 16 >= 8).astype(np.int64)  # minimal straight cut
        refined, stats = fm_refine(g, parts)
        assert stats.cut_after <= stats.cut_before == 8.0

    def test_respects_balance(self, small_grid):
        parts = median_split(np.arange(small_grid.n, dtype=float))
        refined, _ = fm_refine(small_grid, parts, balance_tol=0.02)
        sizes = part_sizes(refined, 2)
        assert sizes.min() >= int(0.48 * small_grid.n) - 1

    def test_weighted_graph(self, small_grid):
        g = random_integer_weights(small_grid, 1, 9, seed=0)
        rng = np.random.default_rng(2)
        parts = rng.integers(0, 2, size=g.n)
        refined, stats = fm_refine(g, parts)
        assert stats.cut_after <= stats.cut_before

    def test_rejects_multiway(self, small_grid):
        with pytest.raises(ValueError, match="bipartition"):
            fm_refine(small_grid, np.arange(small_grid.n) % 3)

    def test_candidate_restriction_reduces_work(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        parts = median_split(res.coords[:, 0])
        full, full_stats = fm_refine(tiny_mesh, parts, max_passes=3)
        band = coordinate_band(res.coords, parts, frac=0.25)
        restricted, band_stats = fm_refine(
            tiny_mesh, parts, candidates=band, max_passes=3
        )
        # The section 4.5.4 claim: far less gain-maintenance work...
        assert band_stats.gain_updates < 0.6 * full_stats.gain_updates
        # ...at comparable quality.
        assert band_stats.cut_after <= full_stats.cut_after * 1.3 + 2


class TestHelpers:
    def test_boundary_vertices(self):
        g = from_edges(4, [0, 1, 2], [1, 2, 3])
        parts = np.array([0, 0, 1, 1])
        np.testing.assert_array_equal(boundary_vertices(g, parts), [1, 2])

    def test_coordinate_band_size(self, rng):
        coords = rng.random((100, 2))
        parts = median_split(coords[:, 0])
        band = coordinate_band(coords, parts, frac=0.3)
        assert len(band) == 30

    def test_coordinate_band_near_cut(self):
        coords = np.column_stack([np.arange(100.0), np.zeros(100)])
        parts = median_split(coords[:, 0])
        band = coordinate_band(coords, parts, frac=0.1)
        # The ten vertices nearest the midpoint straddle the cut.
        assert set(band.tolist()) == set(range(45, 55))

    def test_band_validation(self, rng):
        coords = rng.random((10, 2))
        with pytest.raises(ValueError):
            coordinate_band(coords, median_split(coords[:, 0]), frac=0.0)
