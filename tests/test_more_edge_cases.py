"""Additional edge-case coverage across subsystems."""

import networkx as nx
import numpy as np
import pytest

from repro import parhde
from repro.core.stress_majorization import build_terms, stress_majorization
from repro.graph import from_edges, from_networkx, grid2d
from repro.partition import kmeans


class TestInteropDirected:
    def test_digraph_symmetrized(self):
        G = nx.DiGraph()
        G.add_edges_from([(0, 1), (1, 0), (1, 2)])
        g = from_networkx(G)
        # Direction ignored, reciprocal pair collapsed.
        assert g.m == 2
        assert g.has_edge(2, 1)

    def test_self_loops_dropped(self):
        G = nx.Graph()
        G.add_edges_from([(0, 0), (0, 1)])
        g = from_networkx(G)
        assert g.m == 1


class TestMajorizationWeighted:
    def test_terms_use_weighted_distances(self, small_grid):
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 3, 7, seed=0)
        i, j, d = build_terms(g, pivots=0)
        assert d.min() >= 3.0 and d.max() < 7.0

    def test_majorization_on_weighted_graph(self, small_grid, rng):
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 1, 5, seed=0)
        res = stress_majorization(
            g, rng.standard_normal((g.n, 2)), pivots=3, max_iter=20
        )
        assert np.all(np.isfinite(res.coords))
        hist = np.array(res.stress_history)
        assert hist[-1] <= hist[0]


class TestKMeansDegenerate:
    def test_duplicate_points(self):
        X = np.zeros((10, 2))
        X[5:] = 1.0
        res = kmeans(X, 2, seed=0)
        assert res.inertia < 1e-12
        assert len(np.unique(res.labels)) == 2

    def test_all_identical_points(self):
        X = np.ones((8, 2))
        res = kmeans(X, 3, seed=0)
        # Empty clusters get re-seeded; labels still cover <= 3 values
        # and nothing blows up.
        assert res.labels.min() >= 0 and res.labels.max() <= 2


class TestTraceAlphaVariants:
    def test_infinite_alpha_stays_topdown(self, small_random):
        from repro.bfs.trace import trace_bfs

        _, traces = trace_bfs(small_random, 0, alpha=np.inf)
        assert all(t.direction == "td" for t in traces)

    def test_tiny_alpha_switches_early(self, small_random):
        from repro.bfs.trace import trace_bfs

        _, traces = trace_bfs(small_random, 0, alpha=0.5)
        assert any(t.direction == "bu" for t in traces)


class TestParhdeDims3:
    def test_3d_subspace_orthonormal(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, dims=3, seed=0)
        d = tiny_mesh.weighted_degrees
        np.testing.assert_allclose(res.coords.T @ d, 0.0, atol=1e-6)
        assert res.eigenvalues[0] <= res.eigenvalues[1] <= res.eigenvalues[2]


class TestEdgeListOfEmptyRows:
    def test_isolated_vertices_everywhere(self):
        g = from_edges(7, [2], [4])
        u, v = g.edge_list()
        assert (u.tolist(), v.tolist()) == ([2], [4])
        from repro.graph import adjacency_gaps

        assert len(adjacency_gaps(g)) == 0


class TestSVGWeightedGraph:
    def test_svg_on_weighted(self, small_grid, tmp_path, rng):
        from repro.drawing import write_svg
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 1, 5, seed=0)
        write_svg(g, rng.random((g.n, 2)), tmp_path / "w.svg")
        assert (tmp_path / "w.svg").read_text().count("<line") == g.m


class TestSensitivityMetricBounds:
    def test_speedup_bounded_by_cores(self):
        from repro.parallel import BRIDGES_RSM, KernelCost, Ledger, sweep_parameter

        led = Ledger()
        with led.phase("P"):
            led.add(KernelCost(work=1e9))
        row = sweep_parameter(led, BRIDGES_RSM, "core_ops", p=28, metric="speedup")
        assert all(v <= 28.0001 for v in row.values)
