"""Batched frontier-matrix multi-source BFS: parity and cost tests.

The contract of :mod:`repro.bfs.batched` is *bitwise* equivalence with
``s`` independent direction-optimizing traversals — distances (including
the ``-1`` unreached sentinel on disconnected graphs), per-column level
counts, per-level direction decisions, and the measured edge-examination
counters all match :func:`repro.bfs.bfs_distances` exactly.  What changes
is the cost model: one fork-join region per direction-group per level
instead of one per source per level.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import bfs_distances
from repro.bfs.batched import batched_bfs_distances, run_sources_batched
from repro.bfs.runner import run_sources
from repro.graph import from_edges, grid2d, path_graph, uniform_random
from repro.parallel.costs import Ledger

from conftest import random_connected_graph


def arbitrary_graph(n, m, seed):
    """A random simple graph, *not* necessarily connected."""
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    keep = u != v
    return from_edges(n, u[keep], v[keep])


def assert_batched_matches_per_source(g, sources):
    dist, stats = batched_bfs_distances(g, sources)
    assert dist.dtype == np.int32
    assert dist.shape == (g.n, len(sources))
    for j, src in enumerate(sources):
        ref_dist, ref = bfs_distances(g, int(src))
        np.testing.assert_array_equal(dist[:, j], ref_dist)
        st_j = stats[j]
        assert st_j.source == int(src)
        assert st_j.levels == ref.levels
        assert st_j.directions == ref.directions
        assert st_j.edges_topdown == ref.edges_topdown
        assert st_j.edges_bottomup == ref.edges_bottomup
        assert st_j.reached == ref.reached


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 60),
    extra=st.integers(0, 120),
    seed=st.integers(0, 9999),
    s=st.integers(1, 8),
)
def test_property_connected_bitwise_parity(n, extra, seed, s):
    """Property: batched == s independent traversals, connected graphs."""
    g = random_connected_graph(n, extra, seed)
    rng = np.random.default_rng(seed + 1)
    sources = rng.integers(0, n, size=min(s, n)).astype(np.int64)
    assert_batched_matches_per_source(g, sources)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 60),
    m=st.integers(0, 90),
    seed=st.integers(0, 9999),
    s=st.integers(1, 8),
)
def test_property_disconnected_bitwise_parity(n, m, seed, s):
    """Property: unreached vertices stay ``-1`` in every column."""
    g = arbitrary_graph(n, m, seed)
    rng = np.random.default_rng(seed + 1)
    sources = rng.integers(0, n, size=min(s, n)).astype(np.int64)
    assert_batched_matches_per_source(g, sources)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 50),
    m=st.integers(0, 80),
    seed=st.integers(0, 9999),
    s=st.integers(1, 6),
)
def test_property_stats_totals(n, m, seed, s):
    """Property: per-column counters are internally consistent."""
    g = arbitrary_graph(n, m, seed)
    rng = np.random.default_rng(seed + 2)
    sources = rng.integers(0, n, size=min(s, n)).astype(np.int64)
    dist, stats = batched_bfs_distances(g, sources)
    for j, st_j in enumerate(stats):
        assert len(st_j.directions) == st_j.levels
        assert st_j.reached == int((dist[:, j] >= 0).sum())
        # The loop always processes the deepest frontier once more (it
        # discovers nothing and empties), so levels == max dist + 1.
        assert st_j.levels == int(dist[:, j].max()) + 1
        assert st_j.edges_examined <= 2 * g.nnz * max(1, st_j.levels)


def test_duplicate_sources(small_grid):
    """The same pivot may appear twice; its columns are identical."""
    sources = np.array([5, 5, 17], dtype=np.int64)
    assert_batched_matches_per_source(small_grid, sources)


def test_high_diameter_path():
    """Path graph stresses many levels with tiny frontiers."""
    g = path_graph(80)
    sources = np.array([0, 40, 79], dtype=np.int64)
    assert_batched_matches_per_source(g, sources)


def test_dense_random_triggers_bottom_up(small_random):
    """uniform_random(9, degree=8) flips to bottom-up mid-traversal."""
    sources = np.arange(6, dtype=np.int64)
    dist, stats = batched_bfs_distances(small_random, sources)
    assert any("bu" in st_j.directions for st_j in stats)
    assert_batched_matches_per_source(small_random, sources)


def test_source_out_of_range(small_grid):
    with pytest.raises(ValueError):
        batched_bfs_distances(small_grid, np.array([small_grid.n]))
    with pytest.raises(ValueError):
        batched_bfs_distances(small_grid, np.array([-1]))


def test_run_sources_batched_matches_runner(small_grid):
    """The MultiSourceResult wrapper mirrors run_sources bitwise."""
    sources = np.array([0, 30, 99, 150], dtype=np.int64)
    batched = run_sources_batched(small_grid, sources)
    ref = run_sources(small_grid, sources)
    np.testing.assert_array_equal(batched.distances, ref.distances)
    np.testing.assert_array_equal(batched.sources, ref.sources)
    assert batched.distances.dtype == np.float64
    for a, b in zip(batched.stats, ref.stats):
        assert a.levels == b.levels
        assert a.directions == b.directions
        assert a.edges_examined == b.edges_examined


def test_batched_ledger_fewer_regions(small_random):
    """One region per direction-group per level, not per source."""
    sources = np.arange(8, dtype=np.int64)
    led_b = Ledger()
    with led_b.phase("BFS"):
        run_sources_batched(small_random, sources, ledger=led_b)
    led_p = Ledger()
    with led_p.phase("BFS"):
        run_sources(small_random, sources, ledger=led_p)
    def regions(led):
        tot = led.phase_totals()["BFS"]
        return tot.parallel.regions + tot.sequential.regions

    assert regions(led_b) < regions(led_p)


def test_batched_rejects_weighted():
    """select_and_traverse refuses batched + weighted."""
    from repro.core.pivots import select_and_traverse
    from repro.graph import random_integer_weights

    g = random_integer_weights(grid2d(6, 6), seed=0)
    with pytest.raises(ValueError, match="unweighted"):
        select_and_traverse(g, 3, traversal="batched", weighted=True)


def test_graph_miss_rate_thread_safe(small_random):
    """Concurrent first calls agree and memoize exactly one value."""
    import threading

    from repro.bfs import graph_miss_rate

    g = uniform_random(8, degree=6, seed=7)
    results = []
    barrier = threading.Barrier(8)

    def probe():
        barrier.wait()
        results.append(graph_miss_rate(g))

    threads = [threading.Thread(target=probe) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(results)) == 1
    assert results[0] == graph_miss_rate(g)
