"""Tests for the LOBPCG generalized eigensolver."""

import numpy as np
import pytest

from repro import parhde
from repro.graph import cycle_graph, from_edges, grid2d
from repro.linalg import lobpcg, power_iteration


def dense_generalized_eigs(g):
    """Reference: generalized eigenvalues of (L, D), ascending."""
    A = np.zeros((g.n, g.n))
    for v in range(g.n):
        A[v, g.neighbors(v)] = g.edge_weights_of(v)
    d = A.sum(axis=1)
    L = np.diag(d) - A
    # Symmetric similarity transform: D^-1/2 L D^-1/2.
    Dm = np.diag(1.0 / np.sqrt(d))
    return np.sort(np.linalg.eigvalsh(Dm @ L @ Dm))


class TestCorrectness:
    def test_cycle_eigenvalues(self):
        g = cycle_graph(12)
        res = lobpcg(g, 2, tol=1e-10, seed=0)
        expected = 1 - np.cos(2 * np.pi / 12)  # mu = 1 - lambda_walk
        np.testing.assert_allclose(res.eigenvalues, expected, atol=1e-8)

    def test_grid_matches_dense(self, small_grid):
        res = lobpcg(small_grid, 3, tol=1e-10, seed=0)
        ref = dense_generalized_eigs(small_grid)
        np.testing.assert_allclose(res.eigenvalues, ref[1:4], atol=1e-7)

    def test_matches_power_iteration(self, small_random):
        res = lobpcg(small_random, 2, tol=1e-10, seed=0)
        pi = power_iteration(small_random, 2, tol=1e-10, seed=0)
        # power iteration reports walk eigenvalues; mu = 1 - lambda.
        np.testing.assert_allclose(
            np.sort(res.eigenvalues),
            np.sort(1.0 - pi.eigenvalues),
            atol=1e-5,
        )

    def test_vectors_d_orthonormal_and_deflated(self, small_grid):
        res = lobpcg(small_grid, 2, tol=1e-9, seed=0)
        d = small_grid.weighted_degrees
        G = res.vectors.T @ (d[:, None] * res.vectors)
        np.testing.assert_allclose(G, np.eye(2), atol=1e-8)
        np.testing.assert_allclose(res.vectors.T @ d, 0.0, atol=1e-8)

    def test_residuals_below_tol(self, small_random):
        res = lobpcg(small_random, 2, tol=1e-9, seed=1)
        assert np.all(res.residual_norms < 1e-9)

    def test_weighted_graph(self, small_grid):
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 1, 5, seed=0)
        res = lobpcg(g, 2, tol=1e-9, seed=0)
        ref = dense_generalized_eigs(g)
        np.testing.assert_allclose(res.eigenvalues, ref[1:3], atol=1e-6)


class TestConvergence:
    def test_faster_than_power_iteration(self, tiny_mesh):
        """LOBPCG's raison d'etre on meshes with tiny spectral gaps."""
        res = lobpcg(tiny_mesh, 2, tol=1e-8, max_iter=300, seed=0)
        pi = power_iteration(tiny_mesh, 2, tol=1e-8, max_iter=3000, seed=0)
        assert res.iterations < 300  # converged
        assert res.iterations * 3 < pi.total_iterations

    def test_parhde_warm_start_helps(self, tiny_mesh):
        """Section 4.5.3: ParHDE as LOBPCG preprocessing."""
        hde = parhde(tiny_mesh, s=10, seed=0)
        warm = lobpcg(tiny_mesh, 2, x0=hde.coords, tol=1e-8, seed=0)
        cold = lobpcg(tiny_mesh, 2, tol=1e-8, seed=0)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(
            warm.eigenvalues, cold.eigenvalues, atol=1e-6
        )


class TestValidation:
    def test_bad_k(self, small_grid):
        with pytest.raises(ValueError):
            lobpcg(small_grid, 0)
        with pytest.raises(ValueError):
            lobpcg(small_grid, small_grid.n)

    def test_bad_x0_shape(self, small_grid):
        with pytest.raises(ValueError):
            lobpcg(small_grid, 2, x0=np.ones((3, 2)))

    def test_isolated_vertex_rejected(self):
        g = from_edges(3, [0], [1])
        with pytest.raises(ValueError, match="isolated"):
            lobpcg(g, 1)
