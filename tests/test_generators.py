"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import (
    banded,
    binary_tree,
    complete_graph,
    copying_powerlaw,
    cycle_graph,
    grid2d,
    is_connected,
    kronecker,
    mesh_with_holes,
    path_graph,
    preprocess,
    random_geometric,
    road_network,
    star_graph,
    uniform_random,
    watts_strogatz,
    webgraph,
)


class TestUniformRandom:
    def test_size_and_density(self):
        g = uniform_random(10, degree=8, seed=0)
        assert g.n == 1024
        # Some duplicate collapse, but density should be near 8n.
        assert 0.8 * 8 * 1024 < g.m <= 8 * 1024

    def test_deterministic(self):
        a = uniform_random(8, seed=5)
        b = uniform_random(8, seed=5)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_seed_changes_output(self):
        a = uniform_random(8, seed=1)
        b = uniform_random(8, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_valid(self):
        uniform_random(8, seed=3).validate()


class TestKronecker:
    def test_skewed_degrees(self):
        g = kronecker(11, degree=16, seed=0)
        deg = g.degrees
        # R-MAT has hubs far above the mean, unlike uniform random.
        assert deg.max() > 10 * deg[deg > 0].mean()

    def test_isolated_vertices_exist(self):
        g = kronecker(11, degree=16, seed=0)
        assert np.any(g.degrees == 0)  # trimmed later by preprocessing

    def test_deterministic(self):
        a = kronecker(8, seed=7)
        b = kronecker(8, seed=7)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_bad_probabilities(self):
        with pytest.raises(ValueError, match="sum below 1"):
            kronecker(8, a=0.5, b=0.3, c=0.3)


class TestGrid:
    def test_five_point_stencil(self):
        g = grid2d(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # right edges + down edges
        assert is_connected(g)
        assert g.degrees.max() == 4

    def test_eight_point(self):
        g = grid2d(4, 4, diagonal=True)
        assert g.degrees.max() == 8

    def test_single_cell(self):
        g = grid2d(1, 1)
        assert g.n == 1 and g.m == 0


class TestRoad:
    def test_low_degree_high_diameter(self):
        g = preprocess(road_network(40, 40, seed=0))
        assert g.average_degree < 3.5
        assert is_connected(g)

    def test_keep_validation(self):
        with pytest.raises(ValueError):
            road_network(5, 5, keep=0.0)


class TestWebgraph:
    def test_locality(self):
        from repro.graph import miss_rate

        g = preprocess(webgraph(2000, seed=0))
        assert miss_rate(g) < 0.3  # crawl ordering is cache-friendly

    def test_heavy_tail(self):
        g = webgraph(2000, seed=0)
        assert g.degrees.max() > 8 * g.average_degree


class TestCopyingPowerlaw:
    def test_power_law_ish(self):
        g = copying_powerlaw(2000, out_degree=10, seed=0)
        deg = np.sort(g.degrees)[::-1]
        # Top vertex far above median: heavy tail.
        assert deg[0] > 10 * np.median(deg[deg > 0])

    def test_no_locality(self):
        from repro.graph import miss_rate

        g = preprocess(copying_powerlaw(2000, seed=0))
        assert miss_rate(g) > 0.5


class TestMesh:
    def test_holes_removed(self):
        full = mesh_with_holes(30, 30, holes=[])
        holed = mesh_with_holes(30, 30)
        assert holed.n == full.n  # same id space before LCC
        lcc = preprocess(holed)
        assert lcc.n < 900

    def test_connected_after_lcc(self):
        g = preprocess(mesh_with_holes(25, 25))
        assert is_connected(g)

    def test_triangulated(self):
        g = mesh_with_holes(10, 10, holes=[])
        # Interior vertices of a one-diagonal triangulation reach degree 6.
        assert g.degrees.max() == 6


class TestOtherGenerators:
    def test_random_geometric(self):
        g = random_geometric(400, seed=0)
        assert g.n == 400
        assert 2 < g.average_degree < 12
        g.validate()

    def test_banded(self):
        g = banded(300, offsets=(1, 2, 64))
        assert g.has_edge(0, 1) and g.has_edge(0, 2) and g.has_edge(0, 64)
        assert is_connected(g)

    def test_banded_rejects_bad_offsets(self):
        with pytest.raises(ValueError):
            banded(10, offsets=(0,))
        with pytest.raises(ValueError):
            banded(10, offsets=(20,))

    def test_watts_strogatz(self):
        g = watts_strogatz(200, k=6, p=0.1, seed=0)
        assert abs(g.average_degree - 6) < 1.0
        with pytest.raises(ValueError):
            watts_strogatz(100, k=5)  # odd k

    def test_path_cycle_star_complete(self):
        assert path_graph(5).m == 4
        assert cycle_graph(5).m == 5
        assert star_graph(5).m == 4
        assert star_graph(5).degrees[0] == 4
        assert complete_graph(5).m == 10

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.n == 15
        assert g.m == 14
        assert is_connected(g)
        assert g.degrees[0] == 2  # root

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            cycle_graph(2)
        with pytest.raises(ValueError):
            uniform_random(0)
