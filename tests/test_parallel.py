"""Tests for the cost ledger, machine model, and reports."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    BRIDGES_ESM,
    BRIDGES_RSM,
    KernelCost,
    LAPTOP,
    Ledger,
    breakdown,
    format_breakdown_table,
    format_scaling_table,
    phase_times,
    scaling_table,
    simulate_ledger,
)


class TestKernelCost:
    def test_addition(self):
        a = KernelCost(work=1, flops=2, depth=3, bytes_streamed=4, random_lines=5, regions=6)
        b = KernelCost(work=10, flops=20, depth=30, bytes_streamed=40, random_lines=50, regions=60)
        c = a + b
        assert (c.work, c.flops, c.depth) == (11, 22, 33)
        assert (c.bytes_streamed, c.random_lines, c.regions) == (44, 55, 66)

    def test_sum_builtin(self):
        costs = [KernelCost(work=i) for i in range(5)]
        assert sum(costs).work == 10

    def test_scaled(self):
        c = KernelCost(work=4, regions=2).scaled(0.5)
        assert c.work == 2 and c.regions == 1

    def test_is_zero(self):
        assert KernelCost().is_zero
        assert not KernelCost(flops=1).is_zero


class TestLedger:
    def test_phase_attribution(self):
        led = Ledger()
        with led.phase("A"):
            led.add(KernelCost(work=1))
        with led.phase("B"):
            led.add(KernelCost(work=2), subphase="x")
            led.add(KernelCost(work=3), subphase="y")
        assert led.phases() == ["A", "B"]
        totals = led.phase_totals()
        assert totals["A"].parallel.work == 1
        assert totals["B"].parallel.work == 5
        subs = led.subphase_totals("B")
        assert subs["x"].parallel.work == 2
        assert subs["y"].parallel.work == 3

    def test_default_phase_is_other(self):
        led = Ledger()
        led.add(KernelCost(work=1))
        assert led.phases() == ["Other"]

    def test_zero_cost_not_recorded(self):
        led = Ledger()
        led.add(KernelCost())
        assert len(led) == 0

    def test_sequential_separation(self):
        led = Ledger()
        with led.phase("P"):
            led.add(KernelCost(work=5), sequential=True)
            led.add(KernelCost(work=7))
        tot = led.total()
        assert tot.sequential.work == 5
        assert tot.parallel.work == 7

    def test_merge(self):
        a, b = Ledger(), Ledger()
        with a.phase("P"):
            a.add(KernelCost(work=1))
        with b.phase("P"):
            b.add(KernelCost(work=2))
        a.merge(b)
        assert a.phase_totals()["P"].parallel.work == 3

    def test_nested_phases_become_subphases(self):
        led = Ledger()
        with led.phase("Outer"):
            with led.phase("inner"):
                led.add(KernelCost(work=1))
        assert led.phases() == ["Outer"]
        assert "inner" in led.subphase_totals("Outer")


class TestMachineModel:
    @pytest.mark.parametrize("machine", [BRIDGES_RSM, BRIDGES_ESM, LAPTOP])
    def test_time_nonincreasing_in_p(self, machine):
        cost = KernelCost(
            work=1e9, flops=1e9, bytes_streamed=1e8, random_lines=1e6
        )
        times = [machine.time(cost, p) for p in range(1, machine.cores + 1)]
        for a, b in zip(times, times[1:]):
            assert b <= a * 1.000001

    def test_clamp(self):
        assert BRIDGES_RSM.clamp(100) == 28
        with pytest.raises(ValueError):
            BRIDGES_RSM.clamp(0)

    def test_pure_compute_scales_linearly(self):
        cost = KernelCost(work=1e9)
        t1 = BRIDGES_RSM.time(cost, 1)
        t28 = BRIDGES_RSM.time(cost, 28)
        assert t1 / t28 == pytest.approx(28, rel=1e-6)

    def test_stream_saturates(self):
        """The DOrtho mechanism: bandwidth flat beyond ~7 cores."""
        cost = KernelCost(bytes_streamed=1e9)
        t7 = BRIDGES_RSM.time(cost, 7)
        t28 = BRIDGES_RSM.time(cost, 28)
        assert t28 == pytest.approx(t7, rel=1e-9)
        assert BRIDGES_RSM.time(cost, 1) / t7 == pytest.approx(7, rel=1e-6)

    def test_depth_floor(self):
        cost = KernelCost(work=1e6, depth=1e6)
        # With depth == work, no speedup is possible.
        assert BRIDGES_RSM.time(cost, 28) == pytest.approx(
            BRIDGES_RSM.time(cost, 1)
        )

    def test_sync_grows_with_p(self):
        cost = KernelCost(regions=1000)
        assert BRIDGES_RSM.time(cost, 28) > BRIDGES_RSM.time(cost, 1)

    def test_latency_term_near_linear(self):
        cost = KernelCost(random_lines=1e8)
        t1 = BRIDGES_RSM.time(cost, 1)
        t28 = BRIDGES_RSM.time(cost, 28)
        assert 20 < t1 / t28 <= 28.001

    def test_sequential_charged_at_one_thread(self):
        led = Ledger()
        with led.phase("P"):
            led.add(KernelCost(work=1e9), sequential=True)
        assert simulate_ledger(led, BRIDGES_RSM, 28) == pytest.approx(
            simulate_ledger(led, BRIDGES_RSM, 1)
        )


@settings(max_examples=30, deadline=None)
@given(
    work=st.floats(0, 1e12),
    flops=st.floats(0, 1e12),
    streamed=st.floats(0, 1e12),
    lines=st.floats(0, 1e10),
    regions=st.integers(0, 10_000),
    p=st.integers(1, 28),
)
def test_time_positive_and_finite(work, flops, streamed, lines, regions, p):
    cost = KernelCost(
        work=work, flops=flops, bytes_streamed=streamed,
        random_lines=lines, regions=regions,
    )
    t = BRIDGES_RSM.time(cost, p)
    assert t >= 0 and math.isfinite(t)


class TestReports:
    def _ledger(self):
        led = Ledger()
        with led.phase("BFS"):
            led.add(KernelCost(work=1e8, regions=10))
        with led.phase("DOrtho"):
            led.add(KernelCost(bytes_streamed=1e8))
        return led

    def test_breakdown_percentages(self):
        bd = breakdown(self._ledger(), BRIDGES_RSM, 28)
        assert set(bd.seconds) == {"BFS", "DOrtho"}
        assert sum(bd.percent.values()) == pytest.approx(100.0)

    def test_phase_times_order(self):
        ph = phase_times(self._ledger(), BRIDGES_RSM, 4)
        assert list(ph) == ["BFS", "DOrtho"]

    def test_scaling_table(self):
        table = scaling_table(self._ledger(), BRIDGES_RSM, [1, 4, 28])
        assert table[1] >= table[4] >= table[28]

    def test_format_breakdown(self):
        rows = {"g1": breakdown(self._ledger(), BRIDGES_RSM, 28)}
        text = format_breakdown_table(rows)
        assert "BFS" in text and "g1" in text and "%" in text

    def test_format_scaling(self):
        rows = {"g1": scaling_table(self._ledger(), BRIDGES_RSM, [1, 4])}
        text = format_scaling_table(rows)
        assert "p=4" in text and "x" in text
        raw = format_scaling_table(rows, relative=False)
        assert "p=1" in raw

    def test_empty_tables(self):
        assert format_breakdown_table({}) == "(empty)"
        assert format_scaling_table({}) == "(empty)"


class TestSensitivity:
    def _ledger(self):
        led = Ledger()
        with led.phase("BFS"):
            led.add(KernelCost(work=1e9, random_lines=1e7, regions=50))
        with led.phase("DOrtho"):
            led.add(KernelCost(bytes_streamed=5e8))
        return led

    def test_sweep_time_monotone_in_core_rate(self):
        from repro.parallel import sweep_parameter

        row = sweep_parameter(
            self._ledger(), BRIDGES_RSM, "core_ops", p=28, metric="time"
        )
        # Faster cores, never slower overall.
        assert list(row.values) == sorted(row.values, reverse=True)
        assert row.spread > 1.0

    def test_speedup_metric(self):
        from repro.parallel import sweep_parameter

        row = sweep_parameter(
            self._ledger(), BRIDGES_RSM, "stream_bw_peak", p=28,
            metric="speedup",
        )
        assert all(v >= 1.0 for v in row.values)

    def test_report_covers_all_tunables(self):
        from repro.parallel import sensitivity_report
        from repro.parallel.sensitivity import TUNABLE

        rows = sensitivity_report(self._ledger(), BRIDGES_RSM, p=28)
        assert set(rows) == set(TUNABLE)

    def test_format(self):
        from repro.parallel import format_sensitivity, sensitivity_report

        rows = sensitivity_report(
            self._ledger(), BRIDGES_RSM, p=28, parameters=("mlp",)
        )
        text = format_sensitivity(rows)
        assert "mlp" in text and "spread" in text
        from repro.parallel.sensitivity import format_sensitivity as f2

        assert f2({}) == "(empty)"

    def test_unknown_parameter(self):
        from repro.parallel import sweep_parameter

        with pytest.raises(ValueError, match="unknown tunable"):
            sweep_parameter(self._ledger(), BRIDGES_RSM, "cores", p=4)

    def test_unknown_metric(self):
        from repro.parallel import sweep_parameter

        with pytest.raises(ValueError, match="metric"):
            sweep_parameter(
                self._ledger(), BRIDGES_RSM, "mlp", p=4, metric="joules"
            )
