"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    from_edges,
    grid2d,
    mesh_with_holes,
    path_graph,
    preprocess,
    uniform_random,
)


@pytest.fixture(scope="session")
def tiny_mesh() -> CSRGraph:
    """Connected barth-like mesh, ~700 vertices."""
    return preprocess(mesh_with_holes(30, 30), name="tiny-mesh")


@pytest.fixture(scope="session")
def small_grid() -> CSRGraph:
    return grid2d(12, 17)


@pytest.fixture(scope="session")
def small_random() -> CSRGraph:
    """Connected uniform random graph, ~512 vertices."""
    return preprocess(uniform_random(9, degree=8, seed=42), name="small-rand")


@pytest.fixture(scope="session")
def path10() -> CSRGraph:
    return path_graph(10)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_connected_graph(n: int, extra_edges: int, seed: int) -> CSRGraph:
    """A random connected simple graph: spanning tree + random extras.

    Used by property-based tests that need arbitrary connected inputs.
    """
    rng = np.random.default_rng(seed)
    parents = np.array(
        [rng.integers(0, max(i, 1)) for i in range(1, n)], dtype=np.int64
    )
    tu = np.arange(1, n, dtype=np.int64)
    if extra_edges:
        eu = rng.integers(0, n, size=extra_edges)
        ev = rng.integers(0, n, size=extra_edges)
        u = np.concatenate([parents, eu])
        v = np.concatenate([tu, ev])
    else:
        u, v = parents, tu
    return from_edges(n, u, v)
