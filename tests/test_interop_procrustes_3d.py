"""Tests for NetworkX interop, Procrustes alignment, and 3D projection."""

import networkx as nx
import numpy as np
import pytest

from repro import parhde
from repro.drawing import (
    project_orthographic,
    rotation_matrix,
    turntable_views,
)
from repro.graph import from_networkx, layout_to_networkx_pos, to_networkx
from repro.metrics import layout_disparity, procrustes_align


class TestNetworkXInterop:
    def test_roundtrip_unweighted(self, small_grid):
        G = to_networkx(small_grid)
        back = from_networkx(G)
        np.testing.assert_array_equal(back.indptr, small_grid.indptr)
        np.testing.assert_array_equal(back.indices, small_grid.indices)
        assert back.weights is None

    def test_roundtrip_weighted(self, small_grid):
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 1, 9, seed=0)
        back = from_networkx(to_networkx(g))
        np.testing.assert_allclose(back.weights, g.weights)

    def test_from_networkx_arbitrary_labels(self):
        G = nx.Graph()
        G.add_edges_from([("a", "b"), ("b", "c"), ("c", "a")])
        g = from_networkx(G)
        assert g.n == 3 and g.m == 3

    def test_from_networkx_mixed_weights_treated_unweighted(self):
        G = nx.Graph()
        G.add_edge(0, 1, weight=2.0)
        G.add_edge(1, 2)  # no weight attribute
        g = from_networkx(G)
        assert g.weights is None

    def test_from_networkx_classic_generators(self):
        g = from_networkx(nx.karate_club_graph())
        g.validate()
        assert g.n == 34
        layout = parhde(g, s=8, seed=0)
        assert np.all(np.isfinite(layout.coords))

    def test_multigraph_collapses(self):
        G = nx.MultiGraph()
        G.add_edge(0, 1)
        G.add_edge(0, 1)
        G.add_edge(1, 2)
        g = from_networkx(G, weight=None)
        assert g.m == 2

    def test_pos_dict(self, rng):
        coords = rng.random((5, 2))
        pos = layout_to_networkx_pos(coords)
        assert pos[3] == tuple(coords[3].tolist())

    def test_type_error(self):
        with pytest.raises(TypeError):
            from_networkx([1, 2, 3])


class TestProcrustes:
    def test_identical_after_rotation_and_scale(self, rng):
        X = rng.standard_normal((50, 2))
        theta = 0.7
        R = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        Y = 3.5 * (X @ R) + [10.0, -2.0]
        res = procrustes_align(X, Y)
        assert res.disparity < 1e-12
        np.testing.assert_allclose(res.aligned, Y, atol=1e-9)
        assert res.scale == pytest.approx(3.5)

    def test_reflection_handled(self, rng):
        X = rng.standard_normal((30, 2))
        Y = X * [-1.0, 1.0]  # mirror
        assert layout_disparity(X, Y) < 1e-12

    def test_unrelated_layouts_high_disparity(self, rng):
        X = rng.standard_normal((400, 2))
        Y = rng.standard_normal((400, 2))
        assert layout_disparity(X, Y) > 0.5

    def test_rotation_is_orthogonal(self, rng):
        X = rng.standard_normal((20, 3))
        Y = rng.standard_normal((20, 3))
        res = procrustes_align(X, Y)
        np.testing.assert_allclose(
            res.rotation @ res.rotation.T, np.eye(3), atol=1e-10
        )

    def test_same_seed_layouts_agree(self, tiny_mesh):
        """Two ParHDE runs with different pivots still draw the same shape."""
        a = parhde(tiny_mesh, s=15, seed=0).coords
        b = parhde(tiny_mesh, s=15, seed=3).coords
        assert layout_disparity(a, b) < 0.35

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            procrustes_align(rng.random((4, 2)), rng.random((5, 2)))
        with pytest.raises(ValueError):
            procrustes_align(np.zeros((4, 2)), rng.random((4, 2)))


class Test3DProjection:
    def test_rotation_matrix_orthogonal(self):
        R = rotation_matrix(0.3, -0.8, 1.2)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(R) == pytest.approx(1.0)

    def test_identity_projection_drops_z(self, rng):
        coords = rng.random((10, 3))
        np.testing.assert_allclose(
            project_orthographic(coords), coords[:, :2]
        )

    def test_rotation_preserves_distances(self, rng):
        coords = rng.random((20, 3))
        view = project_orthographic(coords, yaw=0.5, pitch=0.2, roll=0.1)
        # Projected distances never exceed 3D distances.
        d3 = np.linalg.norm(coords[0] - coords[1])
        d2 = np.linalg.norm(view[0] - view[1])
        assert d2 <= d3 + 1e-12

    def test_turntable(self, rng):
        coords = rng.random((15, 3))
        views = turntable_views(coords, frames=6)
        assert len(views) == 6
        assert all(v.shape == (15, 2) for v in views)
        assert not np.allclose(views[0], views[1])

    def test_3d_layout_end_to_end(self, tiny_mesh, tmp_path):
        from repro.drawing import save_drawing

        res = parhde(tiny_mesh, s=10, dims=3, seed=0)
        view = project_orthographic(res.coords, yaw=0.6, pitch=0.4)
        save_drawing(tiny_mesh, view, tmp_path / "view.png", width=80, height=80)
        assert (tmp_path / "view.png").exists()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            project_orthographic(rng.random((5, 2)))
        with pytest.raises(ValueError):
            turntable_views(rng.random((5, 3)), frames=0)
