"""Tests for the ParHDE core algorithm."""

import numpy as np
import pytest

from repro import parhde
from repro.baselines import spectral_layout
from repro.graph import complete_graph, from_edges, random_integer_weights
from repro.metrics import principal_angles, rayleigh_quotients
from repro.parallel import BRIDGES_RSM, Ledger


class TestBasics:
    def test_output_shapes(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        assert res.coords.shape == (tiny_mesh.n, 2)
        assert res.B.shape == (tiny_mesh.n, 10)
        assert res.S.shape[0] == tiny_mesh.n
        assert len(res.eigenvalues) == 2
        assert len(res.pivots) == 10
        assert np.all(np.isfinite(res.coords))

    def test_three_dims(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, dims=3, seed=0)
        assert res.coords.shape == (tiny_mesh.n, 3)
        assert len(res.eigenvalues) == 3

    def test_deterministic(self, tiny_mesh):
        a = parhde(tiny_mesh, s=8, seed=5)
        b = parhde(tiny_mesh, s=8, seed=5)
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_array_equal(a.pivots, b.pivots)

    def test_seed_changes_pivots(self, tiny_mesh):
        a = parhde(tiny_mesh, s=8, seed=1)
        b = parhde(tiny_mesh, s=8, seed=2)
        assert not np.array_equal(a.pivots, b.pivots)

    def test_subspace_d_orthonormal(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        d = tiny_mesh.weighted_degrees
        G = res.S.T @ (d[:, None] * res.S)
        np.testing.assert_allclose(G, np.eye(res.S.shape[1]), atol=1e-8)

    def test_layout_centered(self, tiny_mesh):
        # x' D 1 = 0 is a constraint of Eq. 1.
        res = parhde(tiny_mesh, s=10, seed=0)
        d = tiny_mesh.weighted_degrees
        np.testing.assert_allclose(res.coords.T @ d, 0.0, atol=1e-6)

    def test_eigenvalues_sorted_nonnegative(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        assert res.eigenvalues[0] >= -1e-12
        assert res.eigenvalues[0] <= res.eigenvalues[1]


class TestValidation:
    def test_disconnected_rejected(self):
        g = from_edges(6, [0, 1, 3, 4], [1, 2, 4, 5])
        with pytest.raises(ValueError, match="connected"):
            parhde(g, s=3)

    def test_too_small(self):
        g = from_edges(2, [0], [1])
        with pytest.raises(ValueError, match="3 vertices"):
            parhde(g, s=2)

    def test_s_below_dims(self, tiny_mesh):
        with pytest.raises(ValueError, match="at least"):
            parhde(tiny_mesh, s=1, dims=2)

    def test_weighted_flag_requires_weights(self, tiny_mesh):
        with pytest.raises(ValueError, match="weighted"):
            parhde(tiny_mesh, s=5, weighted=True)

    def test_bad_options(self, tiny_mesh):
        with pytest.raises(ValueError):
            parhde(tiny_mesh, s=5, ortho="Q")
        with pytest.raises(ValueError):
            parhde(tiny_mesh, s=5, project_basis="C")

    def test_complete_graph_degenerate_distances(self):
        # BFS columns of K_n are 1 - e_source: independent but nearly
        # parallel; the pipeline must survive and produce a symmetric
        # layout (all projected eigenvalues equal by symmetry).
        g = complete_graph(8)
        res = parhde(g, s=5, seed=0)
        assert res.coords.shape == (8, 2)
        assert np.all(np.isfinite(res.coords))
        assert res.eigenvalues[0] == pytest.approx(res.eigenvalues[1], rel=1e-6)


class TestVariantsAndOptions:
    def test_project_basis_b(self, tiny_mesh):
        res_s = parhde(tiny_mesh, s=10, seed=0, project_basis="S")
        res_b = parhde(tiny_mesh, s=10, seed=0, project_basis="B")
        assert res_b.coords.shape == res_s.coords.shape
        assert np.all(np.isfinite(res_b.coords))
        # The paper's B-projection lands in the same subspace family;
        # the dominant direction agrees even though the bases differ.
        ang = principal_angles(res_s.coords, res_b.coords)
        assert ang[0] < 0.3

    def test_plain_ortho(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0, ortho="plain")
        G = res.S.T @ res.S
        np.testing.assert_allclose(G, np.eye(res.S.shape[1]), atol=1e-8)

    def test_random_pivot_strategies(self, tiny_mesh):
        for strategy in ("random", "random-concurrent"):
            res = parhde(tiny_mesh, s=8, seed=0, pivots=strategy)
            assert len(np.unique(res.pivots)) == 8
            assert np.all(np.isfinite(res.coords))

    def test_cgs(self, tiny_mesh):
        res_m = parhde(tiny_mesh, s=10, seed=0, gs_method="mgs")
        res_c = parhde(tiny_mesh, s=10, seed=0, gs_method="cgs")
        # Numerically identical pipelines up to rounding.
        np.testing.assert_allclose(res_m.coords, res_c.coords, atol=1e-6)

    def test_weighted_pipeline(self, tiny_mesh):
        g = random_integer_weights(tiny_mesh, 1, 8, seed=1)
        res = parhde(g, s=8, seed=0, weighted=True)
        assert np.all(np.isfinite(res.coords))
        # Weighted distances are not hop counts.
        assert res.B.max() > 8


class TestQuality:
    def test_approximates_spectral_layout(self, tiny_mesh):
        """Figure 1 claim: HDE axes nearly span the true eigenvector plane."""
        hde = parhde(tiny_mesh, s=20, seed=0)
        exact = spectral_layout(tiny_mesh, 2, tol=1e-10, seed=0)
        d = tiny_mesh.weighted_degrees
        ang = principal_angles(hde.coords, exact.coords, d)
        assert ang[0] < 0.35  # first axis close

    def test_rayleigh_quotients_above_exact(self, tiny_mesh):
        """HDE minimizes Eq. 1 within a subspace: objective >= optimum."""
        hde = parhde(tiny_mesh, s=15, seed=0)
        exact = spectral_layout(tiny_mesh, 2, tol=1e-10, seed=0)
        rq_hde = np.sort(rayleigh_quotients(tiny_mesh, hde.coords))
        rq_opt = np.sort(rayleigh_quotients(tiny_mesh, exact.coords))
        assert rq_hde[0] >= rq_opt[0] - 1e-9
        # ... but within a modest factor (it is a good approximation).
        assert rq_hde[1] < 30 * max(rq_opt[1], 1e-12)

    def test_more_pivots_no_worse(self, tiny_mesh):
        small = parhde(tiny_mesh, s=4, seed=0)
        large = parhde(tiny_mesh, s=24, seed=0)
        rq_s = rayleigh_quotients(tiny_mesh, small.coords).sum()
        rq_l = rayleigh_quotients(tiny_mesh, large.coords).sum()
        assert rq_l <= rq_s * 1.25  # larger subspace ~ better objective


class TestPerformanceQueries:
    def test_phase_seconds_structure(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        ph = res.phase_seconds(BRIDGES_RSM, 28)
        assert set(ph) == {"BFS", "DOrtho", "TripleProd", "Other"}
        assert all(v > 0 for v in ph.values())

    def test_subphases(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        sub = res.subphase_seconds(BRIDGES_RSM, 28, "TripleProd")
        assert "LS" in sub and "S'(LS)" in sub
        bfs_sub = res.subphase_seconds(BRIDGES_RSM, 28, "BFS")
        assert "traversal" in bfs_sub and "overhead" in bfs_sub

    def test_speedup_monotone(self, tiny_mesh):
        res = parhde(tiny_mesh, s=10, seed=0)
        times = [res.simulated_seconds(BRIDGES_RSM, p) for p in (1, 2, 4, 8)]
        assert all(b <= a * 1.0001 for a, b in zip(times, times[1:]))

    def test_external_ledger(self, tiny_mesh):
        led = Ledger()
        res = parhde(tiny_mesh, s=5, seed=0, ledger=led)
        assert res.ledger is led
        assert len(led) > 0
