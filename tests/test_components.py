"""Tests for connected component labeling."""

import numpy as np

from repro.graph import (
    component_sizes,
    connected_components,
    from_edges,
    is_connected,
    largest_component_mask,
    path_graph,
)


def test_single_component(small_grid):
    comp = connected_components(small_grid)
    assert comp.max() == 0
    assert is_connected(small_grid)


def test_multiple_components():
    g = from_edges(7, [0, 1, 3, 5], [1, 2, 4, 6])
    comp = connected_components(g)
    assert comp.max() == 2
    assert comp[0] == comp[1] == comp[2]
    assert comp[3] == comp[4]
    assert comp[5] == comp[6]
    assert len({comp[0], comp[3], comp[5]}) == 3


def test_isolated_vertices_are_components():
    g = from_edges(4, [0], [1])
    comp = connected_components(g)
    assert comp.max() == 2
    np.testing.assert_array_equal(
        component_sizes(g), [2, 1, 1]
    )


def test_component_sizes_sorted_descending():
    g = from_edges(9, [0, 1, 2, 4, 6], [1, 2, 3, 5, 7])
    sizes = component_sizes(g)
    np.testing.assert_array_equal(sizes, [4, 2, 2, 1])


def test_largest_component_mask():
    g = from_edges(6, [0, 1, 4], [1, 2, 5])
    mask = largest_component_mask(g)
    np.testing.assert_array_equal(mask, [True, True, True, False, False, False])


def test_empty_graph_not_connected():
    assert not is_connected(from_edges(0, [], []))


def test_single_vertex_connected():
    assert is_connected(from_edges(1, [], []))


def test_path_is_connected(path10):
    assert is_connected(path10)
    assert component_sizes(path10)[0] == 10
