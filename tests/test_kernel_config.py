"""KernelConfig: the typed kernel-selection API and its wiring.

Covers the dataclass itself (validation, coercion, legacy-kwarg
resolution, canonical minimal serialization), ``parhde(kernels=...)``
equivalence with the legacy spellings, the randomized-subspace and
batched-traversal kernels behind it, and the serving engine's
canonicalization: every spelling of one configuration must produce one
cache fingerprint, and contradictions must be 400s, not cache poison.
"""

import numpy as np
import pytest

from repro import KernelConfig, parhde
from repro.core import phde, pivotmds
from repro.core.kernels import SUBSPACE_METHODS, TRAVERSALS
from repro.graph import grid2d, preprocess, uniform_random
from repro.service.engine import BadRequest, LayoutEngine, LayoutRequest
from repro.validate import ValidationPolicy, check_d_orthogonality


# ---------------------------------------------------------------------------
# The dataclass itself
# ---------------------------------------------------------------------------

class TestKernelConfig:
    def test_defaults_match_seed_behaviour(self):
        cfg = KernelConfig()
        assert cfg.pivots == "kcenters"
        assert cfg.traversal == "per-source"
        assert cfg.subspace == "deterministic"
        assert cfg.rounds == 0
        assert cfg.to_params() == {}  # minimal form: defaults vanish

    @pytest.mark.parametrize(
        "field,value",
        [
            ("pivots", "bogus"),
            ("ortho", "Q"),
            ("gs_method", "householder"),
            ("project_basis", "X"),
            ("traversal", "simd"),
            ("subspace", "exact"),
        ],
    )
    def test_rejects_unknown_choices(self, field, value):
        with pytest.raises(ValueError, match=field):
            KernelConfig(**{field: value})

    def test_rejects_bad_rounds_and_tol(self):
        with pytest.raises(ValueError, match="rounds"):
            KernelConfig(rounds=-1)
        with pytest.raises(ValueError, match="rounds"):
            KernelConfig(rounds=1.5)
        with pytest.raises(ValueError, match="rounds"):
            KernelConfig(rounds=True)
        with pytest.raises(ValueError, match="drop_tol"):
            KernelConfig(drop_tol=0.0)

    def test_coerce_mapping_and_json_floats(self):
        cfg = KernelConfig.coerce({"traversal": "batched", "rounds": 2.0})
        assert cfg.traversal == "batched"
        assert cfg.rounds == 2 and isinstance(cfg.rounds, int)
        with pytest.raises(ValueError, match="unknown kernels keys"):
            KernelConfig.coerce({"traversel": "batched"})
        with pytest.raises(ValueError, match="mapping"):
            KernelConfig.coerce("batched")

    def test_resolve_fills_and_restates(self):
        cfg = KernelConfig.resolve({"traversal": "batched"}, pivots="random")
        assert (cfg.traversal, cfg.pivots) == ("batched", "random")
        # Restating what the config already says is fine.
        cfg = KernelConfig.resolve(
            KernelConfig(pivots="random"), pivots="random"
        )
        assert cfg.pivots == "random"
        # None means "not given", never a conflict.
        cfg = KernelConfig.resolve(KernelConfig(pivots="random"), pivots=None)
        assert cfg.pivots == "random"

    def test_resolve_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicting kernel settings"):
            KernelConfig.resolve(
                KernelConfig(pivots="random"), pivots="kcenters"
            )

    def test_to_params_canonical(self):
        a = KernelConfig(traversal="batched", rounds=1).to_params()
        b = KernelConfig.coerce(
            {"traversal": "batched", "rounds": 1}
        ).to_params()
        assert a == b == {"traversal": "batched", "rounds": 1}
        full = KernelConfig().to_params(minimal=False)
        assert set(full) == {
            "pivots", "ortho", "gs_method", "project_basis", "drop_tol",
            "traversal", "subspace", "rounds",
        }

    def test_choice_tuples_exported(self):
        assert "batched" in TRAVERSALS
        assert "randomized" in SUBSPACE_METHODS


# ---------------------------------------------------------------------------
# parhde(kernels=...) and the kernels behind it
# ---------------------------------------------------------------------------

class TestParhdeKernels:
    def test_kernels_equals_legacy_spelling(self, small_grid):
        via_cfg = parhde(
            small_grid, 8, seed=3,
            kernels=KernelConfig(pivots="random", traversal="batched"),
        )
        via_kwargs = parhde(
            small_grid, 8, seed=3, pivots="random", traversal="batched"
        )
        np.testing.assert_array_equal(via_cfg.coords, via_kwargs.coords)
        assert via_cfg.params == via_kwargs.params
        assert via_cfg.params["traversal"] == "batched"

    def test_kernels_dict_accepted(self, small_grid):
        res = parhde(small_grid, 6, kernels={"traversal": "batched"})
        assert res.params["traversal"] == "batched"

    def test_conflict_raises(self, small_grid):
        with pytest.raises(ValueError, match="conflicting kernel settings"):
            parhde(
                small_grid, 6,
                kernels=KernelConfig(pivots="random"), pivots="kcenters",
            )

    def test_batched_random_bitwise_equal(self, small_random):
        """random pivots: batched changes cost, not a single bit of B."""
        a = parhde(small_random, 8, seed=5, pivots="random")
        b = parhde(
            small_random, 8, seed=5, pivots="random", traversal="batched"
        )
        np.testing.assert_array_equal(a.B, b.B)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_batched_kcenters_validates(self, tiny_mesh):
        """Approximate farthest-first still passes every invariant."""
        res = parhde(
            tiny_mesh, 10, seed=1, traversal="batched", validate="strict",
        )
        assert np.isfinite(res.coords).all()
        assert len(np.unique(res.pivots)) == 10

    def test_randomized_subspace_runs_and_stays_orthonormal(self, tiny_mesh):
        res = parhde(
            tiny_mesh, 10, seed=2,
            kernels=KernelConfig(rounds=2, subspace="randomized"),
            validate=ValidationPolicy.coerce("strict"),
        )
        assert res.params["subspace"] == "randomized"
        assert res.params["rounds"] == 2
        check = check_d_orthogonality(
            res.S, tiny_mesh.weighted_degrees, tol=1e-6
        )
        assert check.ok, check.detail

    def test_rounds_require_d_geometry(self, small_grid):
        with pytest.raises(ValueError, match="rounds"):
            parhde(small_grid, 6, rounds=1, ortho="plain")
        with pytest.raises(ValueError, match="rounds"):
            parhde(small_grid, 6, rounds=1, project_basis="B")

    def test_phde_pivotmds_accept_traversal(self, small_grid):
        a = phde(small_grid, 6, seed=4, pivots="random")
        b = phde(
            small_grid, 6, seed=4, pivots="random", traversal="batched"
        )
        np.testing.assert_array_equal(a.coords, b.coords)
        assert b.params["traversal"] == "batched"
        c = pivotmds(
            small_grid, 8, seed=4, pivots="random", traversal="batched"
        )
        assert c.params["traversal"] == "batched"
        assert np.isfinite(c.coords).all()


# ---------------------------------------------------------------------------
# Engine round-trip and fingerprint canonicalization
# ---------------------------------------------------------------------------

@pytest.fixture()
def engine():
    eng = LayoutEngine()
    yield eng
    eng.close()


def _graph():
    return preprocess(uniform_random(8, degree=6, seed=11), name="fp-rand")


class TestEngineKernels:
    def test_spellings_share_one_fingerprint(self, engine):
        g = _graph()
        first = engine.submit(LayoutRequest(
            graph=g, s=6, seed=1,
            params={"kernels": {"traversal": "batched", "rounds": 1}},
        ))
        assert not first.cache_hit
        legacy = engine.submit(LayoutRequest(
            graph=g, s=6, seed=1,
            params={"traversal": "batched", "rounds": 1},
        ))
        assert legacy.cache_hit
        mixed = engine.submit(LayoutRequest(
            graph=g, s=6, seed=1,
            params={"kernels": {"traversal": "batched"}, "rounds": 1},
        ))
        assert mixed.cache_hit

    def test_default_knobs_keep_bare_fingerprint(self, engine):
        g = _graph()
        bare = engine.submit(LayoutRequest(graph=g, s=5, seed=0))
        spelled = engine.submit(LayoutRequest(
            graph=g, s=5, seed=0,
            params={"kernels": {"traversal": "per-source", "rounds": 0}},
        ))
        assert spelled.cache_hit  # explicit defaults == saying nothing

    def test_conflict_is_bad_request(self, engine):
        g = _graph()
        with pytest.raises(BadRequest, match="conflicting"):
            engine.submit(LayoutRequest(
                graph=g, s=5,
                params={"kernels": {"pivots": "random"},
                        "pivots": "kcenters"},
            ))

    def test_unknown_kernels_key_is_bad_request(self, engine):
        g = _graph()
        with pytest.raises(BadRequest, match="unknown kernels keys"):
            engine.submit(LayoutRequest(
                graph=g, s=5, params={"kernels": {"traversel": "batched"}},
            ))

    def test_rounds_rejected_for_phde(self, engine):
        g = _graph()
        with pytest.raises(BadRequest):
            engine.submit(LayoutRequest(
                graph=g, s=5, algorithm="phde", params={"rounds": 2},
            ))

    def test_result_params_echo_kernels(self, engine):
        g = _graph()
        resp = engine.submit(LayoutRequest(
            graph=g, s=6, seed=2,
            params={"kernels": {
                "traversal": "batched", "subspace": "randomized", "rounds": 1,
            }},
        ))
        p = resp.result.params
        assert p["traversal"] == "batched"
        assert p["subspace"] == "randomized"
        assert p["rounds"] == 1

    def test_http_round_trip_kernels(self):
        """kernels in the POST /layout body: served, fingerprinted, cached."""
        import json
        import urllib.request

        from repro.service import make_server

        def loader(name, scale, seed):
            if name == "grid":
                return grid2d(8, 8)
            raise KeyError(name)

        eng = LayoutEngine(graph_loader=loader, timeout=30)
        srv = make_server(eng, port=0).start()
        try:
            def post(body):
                req = urllib.request.Request(
                    srv.url + "/layout",
                    data=json.dumps(body).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return json.loads(resp.read())

            cold = post({"graph": "grid", "s": 6,
                         "params": {"kernels": {"traversal": "batched"}}})
            assert cold["status"] == "computed"
            warm = post({"graph": "grid", "s": 6,
                         "params": {"traversal": "batched"}})
            assert warm["cache_hit"]
            assert warm["fingerprint"] == cold["fingerprint"]
            other = post({"graph": "grid", "s": 6})
            assert not other["cache_hit"]
            assert other["fingerprint"] != cold["fingerprint"]
        finally:
            srv.shutdown()
            eng.close()

    def test_telemetry_counts_kernel_choices(self, engine):
        g = _graph()
        engine.submit(LayoutRequest(
            graph=g, s=5, params={"traversal": "batched"},
        ))
        engine.submit(LayoutRequest(
            graph=g, s=5,
            params={"kernels": {"subspace": "randomized", "rounds": 1}},
        ))
        snap = engine.stats()
        counters = snap.get("counters", snap)
        assert counters.get("kernels.traversal.batched", 0) >= 1
        assert counters.get("kernels.subspace.randomized", 0) >= 1
