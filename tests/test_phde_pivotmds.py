"""Tests for PHDE (PCA-based HDE) and PivotMDS."""

import numpy as np
import pytest

from repro import phde, pivotmds
from repro.core.pivotmds import double_center
from repro.graph import from_edges
from repro.parallel import BRIDGES_RSM


class TestPHDE:
    def test_shapes_and_finite(self, tiny_mesh):
        res = phde(tiny_mesh, s=10, seed=0)
        assert res.coords.shape == (tiny_mesh.n, 2)
        assert np.all(np.isfinite(res.coords))
        assert res.algorithm == "phde"

    def test_is_pca_of_distance_matrix(self, tiny_mesh):
        """PHDE == projection of the centered matrix onto its top-2 PCs."""
        res = phde(tiny_mesh, s=10, seed=0)
        C = res.B - res.B.mean(axis=0)
        _, _, vt = np.linalg.svd(C, full_matrices=False)
        ref = C @ vt[:2].T
        for k in range(2):
            # Eigenvector signs are arbitrary.
            got = res.coords[:, k]
            assert min(
                np.abs(got - ref[:, k]).max(), np.abs(got + ref[:, k]).max()
            ) < 1e-6

    def test_columns_centered(self, tiny_mesh):
        res = phde(tiny_mesh, s=10, seed=0)
        # S holds the centered matrix C for PHDE.
        np.testing.assert_allclose(res.S.mean(axis=0), 0.0, atol=1e-9)

    def test_maximizes_scatter(self, tiny_mesh):
        """The PCA axes carry more variance than random projections."""
        res = phde(tiny_mesh, s=10, seed=0)
        rng = np.random.default_rng(1)
        C = res.S
        pca_var = res.coords.var(axis=0).sum()
        rand_dirs = np.linalg.qr(rng.standard_normal((C.shape[1], 2)))[0]
        rand_var = (C @ rand_dirs).var(axis=0).sum()
        assert pca_var >= rand_var

    def test_phases(self, tiny_mesh):
        res = phde(tiny_mesh, s=10, seed=0)
        ph = res.phase_seconds(BRIDGES_RSM, 28)
        assert set(ph) == {"BFS", "ColCenter", "MatMul", "Other"}

    def test_deterministic(self, tiny_mesh):
        np.testing.assert_array_equal(
            phde(tiny_mesh, s=6, seed=4).coords,
            phde(tiny_mesh, s=6, seed=4).coords,
        )

    def test_disconnected_rejected(self):
        g = from_edges(6, [0, 1, 3, 4], [1, 2, 4, 5])
        with pytest.raises(ValueError, match="connected"):
            phde(g, s=3)


class TestDoubleCenter:
    def test_row_and_column_sums_zero(self, rng):
        B = rng.integers(0, 9, size=(40, 5)).astype(float)
        C = double_center(B)
        np.testing.assert_allclose(C.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(C.mean(axis=1), 0.0, atol=1e-9)

    def test_formula(self, rng):
        B = rng.random((10, 3)) * 5
        C = double_center(B)
        D2 = B * B
        expected = -0.5 * (
            D2
            - D2.mean(axis=1, keepdims=True)
            - D2.mean(axis=0, keepdims=True)
            + D2.mean()
        )
        np.testing.assert_allclose(C, expected)

    def test_recovers_euclidean_configuration(self, rng):
        """Classical MDS sanity: exact distances -> exact inner products.

        With points in R^2 and columns = all points, the doubly centered
        squared-distance matrix equals the centered Gram matrix.
        """
        pts = rng.random((30, 2))
        D = np.sqrt(((pts[:, None, :] - pts[None, :, :]) ** 2).sum(-1))
        C = double_center(D)
        centered = pts - pts.mean(axis=0)
        np.testing.assert_allclose(C, centered @ centered.T, atol=1e-9)


class TestPivotMDS:
    def test_shapes_and_phases(self, tiny_mesh):
        res = pivotmds(tiny_mesh, s=10, seed=0)
        assert res.coords.shape == (tiny_mesh.n, 2)
        assert np.all(np.isfinite(res.coords))
        ph = res.phase_seconds(BRIDGES_RSM, 28)
        assert set(ph) == {"BFS", "DblCntr", "MatMul", "Other"}

    def test_mesh_layout_spreads_both_axes(self, tiny_mesh):
        # A 2D mesh must not collapse to a line.
        res = pivotmds(tiny_mesh, s=10, seed=0)
        var = res.coords.var(axis=0)
        assert var.min() > 0.01 * var.max()

    def test_deterministic(self, tiny_mesh):
        np.testing.assert_array_equal(
            pivotmds(tiny_mesh, s=6, seed=4).coords,
            pivotmds(tiny_mesh, s=6, seed=4).coords,
        )

    def test_similar_global_structure_to_phde(self, tiny_mesh):
        """Computationally siblings (section 3.2): layouts correlate."""
        from repro.metrics import principal_angles

        a = phde(tiny_mesh, s=12, seed=0)
        b = pivotmds(tiny_mesh, s=12, seed=0)
        ang = principal_angles(a.coords, b.coords)
        assert ang[0] < 0.3
