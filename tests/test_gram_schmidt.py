"""Tests for D-orthogonalization (MGS and CGS)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import d_orthogonalize
from repro.parallel import Ledger


def _dgram(S, d):
    return S.T @ (d[:, None] * S)


@pytest.fixture()
def distancelike(rng):
    """A plausible BFS distance matrix: nonnegative integers, full rank."""
    n, s = 200, 6
    B = rng.integers(0, 15, size=(n, s)).astype(np.float64)
    return B


@pytest.fixture()
def degrees(rng):
    return rng.integers(1, 10, size=200).astype(np.float64)


class TestDOrthogonalize:
    @pytest.mark.parametrize("method", ["mgs", "cgs"])
    def test_d_orthonormal(self, distancelike, degrees, method):
        res = d_orthogonalize(distancelike, degrees, method=method)
        G = _dgram(res.S, degrees)
        np.testing.assert_allclose(G, np.eye(res.S.shape[1]), atol=1e-8)

    @pytest.mark.parametrize("method", ["mgs", "cgs"])
    def test_d_orthogonal_to_ones(self, distancelike, degrees, method):
        res = d_orthogonalize(distancelike, degrees, method=method)
        proj = res.S.T @ degrees  # <s_i, 1>_D
        np.testing.assert_allclose(proj, 0.0, atol=1e-8)

    def test_plain_orthogonalization(self, distancelike):
        res = d_orthogonalize(distancelike, None)
        np.testing.assert_allclose(
            res.S.T @ res.S, np.eye(res.S.shape[1]), atol=1e-8
        )
        np.testing.assert_allclose(res.S.sum(axis=0), 0.0, atol=1e-7)

    def test_mgs_cgs_same_span(self, distancelike, degrees):
        a = d_orthogonalize(distancelike, degrees, method="mgs")
        b = d_orthogonalize(distancelike, degrees, method="cgs")
        assert a.kept == b.kept
        # Same subspace: projecting one basis onto the other loses nothing.
        M = a.S.T @ (degrees[:, None] * b.S)
        sigma = np.linalg.svd(M, compute_uv=False)
        np.testing.assert_allclose(sigma, 1.0, atol=1e-6)

    def test_duplicate_column_dropped(self, rng):
        n = 100
        d = np.ones(n)
        b = rng.random(n) * 10
        B = np.column_stack([b, b.copy(), rng.random(n) * 10])
        res = d_orthogonalize(B, d)
        assert 1 in res.dropped
        assert res.S.shape[1] == 2

    def test_constant_column_dropped(self, rng):
        n = 80
        B = np.column_stack([np.full(n, 7.0), rng.random(n) * 5])
        res = d_orthogonalize(B, np.ones(n))
        # A constant vector is parallel to s0 = 1 and must be dropped.
        assert res.dropped == [0]

    def test_kept_indices_in_input_order(self, distancelike, degrees):
        res = d_orthogonalize(distancelike, degrees)
        assert res.kept == sorted(res.kept)
        assert set(res.kept) | set(res.dropped) == set(range(6))

    def test_drop_tolerance(self, rng):
        n = 60
        b = rng.random(n)
        # Second column = first + tiny noise; with a generous tolerance
        # it must be dropped, with a tiny one it survives.
        B = np.column_stack([b * 100, b * 100 + rng.random(n) * 1e-6])
        loose = d_orthogonalize(B, np.ones(n), drop_tol=1e-3)
        tight = d_orthogonalize(B, np.ones(n), drop_tol=1e-12)
        assert loose.dropped == [1]
        assert tight.dropped == []

    def test_invalid_args(self, distancelike, degrees):
        with pytest.raises(ValueError, match="method"):
            d_orthogonalize(distancelike, degrees, method="qr")
        with pytest.raises(ValueError, match="mismatch"):
            d_orthogonalize(distancelike, degrees[:-5])
        with pytest.raises(ValueError, match="positive"):
            d_orthogonalize(distancelike, degrees * 0)

    def test_cgs2_near_rank_deficient(self, rng):
        # Regression: a single CGS projection pass loses orthogonality
        # catastrophically on near-dependent columns (the coefficients
        # are contaminated by the part already removed).  The conditional
        # second pass (CGS2) must keep the Gram residual at working
        # precision, and MGS/CGS must agree on which columns survive.
        n, s = 400, 12
        base = rng.normal(size=(n, 3))
        B = base @ rng.normal(size=(3, s)) + 1e-9 * rng.normal(size=(n, s))
        d = rng.uniform(0.5, 3.0, size=n)
        a = d_orthogonalize(B, d, method="mgs")
        b = d_orthogonalize(B, d, method="cgs")
        assert a.kept == b.kept
        assert a.dropped == b.dropped
        k = b.S.shape[1]
        np.testing.assert_allclose(_dgram(b.S, d), np.eye(k), atol=1e-10)

    def test_cgs_cheaper_traffic_than_mgs(self, distancelike, degrees):
        lm, lc = Ledger(), Ledger()
        with lm.phase("DOrtho"):
            d_orthogonalize(distancelike, degrees, method="mgs", ledger=lm)
        with lc.phase("DOrtho"):
            d_orthogonalize(distancelike, degrees, method="cgs", ledger=lc)
        tm = lm.total().parallel
        tc = lc.total().parallel
        assert tc.bytes_streamed < tm.bytes_streamed  # Table 7 mechanism
        assert tc.regions < tm.regions


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(5, 60),
    s=st.integers(1, 6),
    seed=st.integers(0, 999),
    method=st.sampled_from(["mgs", "cgs"]),
)
def test_dortho_property(n, s, seed, method):
    """Property: output always D-orthonormal and D-orthogonal to ones."""
    rng = np.random.default_rng(seed)
    B = rng.integers(0, 8, size=(n, s)).astype(float)
    d = rng.integers(1, 6, size=n).astype(float)
    res = d_orthogonalize(B, d, method=method)
    k = res.S.shape[1]
    if k:
        np.testing.assert_allclose(_dgram(res.S, d), np.eye(k), atol=1e-7)
        np.testing.assert_allclose(res.S.T @ d, 0.0, atol=1e-7)
    assert len(res.kept) + len(res.dropped) == s
