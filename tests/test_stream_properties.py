"""Property-based tests for the streaming subsystem.

Two ISSUE-mandated invariants, checked over random graphs and random
insert/delete streams:

1. a ``DynamicGraph`` after compaction is digest-identical to the CSR
   built directly from the edited edge list;
2. ``StreamSession`` incremental repair keeps the pivot-distance matrix
   exactly equal to fresh traversals on the edited graph, and the
   resulting coordinates' stress matches the same-pivot pipeline run
   from scratch on the edited graph within tight tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_connected_graph
from repro.bfs import run_sources
from repro.graph import from_edges
from repro.linalg.blas import dense_gemm
from repro.linalg.eigen import extreme_eigenpairs
from repro.linalg.gram_schmidt import d_orthogonalize
from repro.linalg.laplacian import laplacian_spmm
from repro.metrics import sampled_stress
from repro.service import graph_digest
from repro.stream import DynamicGraph, StreamPolicy, StreamSession, edge_delta


def _random_stream(g, rng, rounds):
    """Random per-round deltas: delete existing edges (never bridges we
    care about — connectivity is NOT guaranteed) and insert absent ones."""
    deltas = []
    edges = set(zip(*(a.tolist() for a in g.edge_list())))
    for _ in range(rounds):
        inserts, deletes = [], []
        touched = set()  # one batch may not insert AND delete the same edge
        for _ in range(int(rng.integers(1, 4))):
            if edges and rng.random() < 0.5:
                candidates = sorted(edges - touched)
                if not candidates:
                    continue
                e = candidates[int(rng.integers(len(candidates)))]
                edges.discard(e)
                touched.add(e)
                deletes.append(e)
            else:
                u = int(rng.integers(g.n))
                v = int(rng.integers(g.n))
                a, b = min(u, v), max(u, v)
                if a == b or (a, b) in edges or (a, b) in touched:
                    continue
                edges.add((a, b))
                touched.add((a, b))
                inserts.append((a, b))
        if inserts or deletes:
            deltas.append(edge_delta(inserts=inserts, deletes=deletes))
    return deltas, edges


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=40),
    extra=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_compacted_overlay_equals_direct_build(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    rng = np.random.default_rng(seed + 1)
    dyn = DynamicGraph(g)
    deltas, edges = _random_stream(g, rng, rounds=4)
    for d in deltas:
        dyn.apply(d)

    eu = np.array([e[0] for e in sorted(edges)], dtype=np.int64)
    ev = np.array([e[1] for e in sorted(edges)], dtype=np.int64)
    direct = from_edges(g.n, eu, ev)

    # the lazy CSR snapshot, the compacted base, and the direct build
    # must all be the same graph
    assert graph_digest(dyn.to_csr()) == graph_digest(direct)
    dyn.compact()
    assert dyn.overlay_edges == 0
    assert graph_digest(dyn.base) == graph_digest(direct)
    np.testing.assert_array_equal(dyn.degrees, direct.degrees)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=24, max_value=64),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_session_repair_matches_from_scratch(n, seed):
    # densely connected so random deletes rarely disconnect; a delta that
    # does disconnect must roll back cleanly and raise
    g = random_connected_graph(n, extra_edges=3 * n, seed=seed)
    rng = np.random.default_rng(seed + 7)
    s = min(8, n - 1)
    sess = StreamSession(
        g, s, seed=0, policy=StreamPolicy(drift_threshold=0.9)
    )
    deltas, _ = _random_stream(g, rng, rounds=3)
    for d in deltas:
        epoch_before = sess.epoch
        graph_before = graph_digest(sess.graph)
        try:
            sess.update(d)
        except ValueError:
            # disconnecting delta: the rollback contract
            assert sess.epoch == epoch_before
            assert graph_digest(sess.graph) == graph_before
            continue
        # invariant 1: repaired B is exactly fresh traversals
        fresh = run_sources(sess.graph, sess.pivots)
        np.testing.assert_array_equal(sess.B, fresh.distances)

    # invariant 2: the session's frame matches the same-pivot pipeline
    # run from scratch on the edited graph.  (A re-pivoted from-scratch
    # parhde is the wrong reference: on small random graphs two
    # legitimate pivot sets can differ in sampled stress by large
    # factors, which makes any slack constant flaky.)
    edited = sess.graph
    B = run_sources(edited, sess.pivots).distances
    ores = d_orthogonalize(B, edited.weighted_degrees)
    S = ores.S
    P = laplacian_spmm(edited, S)
    Z = dense_gemm(S.T, P)
    _evals, Y = extreme_eigenpairs(Z, 2, which="smallest")
    s_sess = sampled_stress(edited, sess.coords, samples=8, seed=0)
    s_same = sampled_stress(edited, S @ Y, samples=8, seed=0)
    # Warm-start shortcuts (reused ortho columns, accepted Ritz pairs)
    # are residual-gated, so only tiny numerical slack is needed.
    assert s_sess <= s_same * 1.10 + 1e-9
