"""Tests for sparse/dense linear algebra kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edges, random_integer_weights
from repro.linalg import (
    laplacian_quadratic_form,
    laplacian_spmm,
    spmm,
    spmv,
    walk_spmm,
)
from repro.parallel import Ledger

from conftest import random_connected_graph


def dense_adjacency(g):
    A = np.zeros((g.n, g.n))
    for v in range(g.n):
        A[v, g.neighbors(v)] = g.edge_weights_of(v)
    return A


class TestSpMM:
    def test_matches_dense(self, small_random, rng):
        X = rng.standard_normal((small_random.n, 4))
        A = dense_adjacency(small_random)
        np.testing.assert_allclose(spmm(small_random, X), A @ X)

    def test_vector_form(self, small_grid, rng):
        x = rng.standard_normal(small_grid.n)
        A = dense_adjacency(small_grid)
        out = spmv(small_grid, x)
        assert out.shape == (small_grid.n,)
        np.testing.assert_allclose(out, A @ x)

    def test_weighted(self, small_random, rng):
        g = random_integer_weights(small_random, 1, 9, seed=4)
        X = rng.standard_normal((g.n, 3))
        np.testing.assert_allclose(spmm(g, X), dense_adjacency(g) @ X)

    def test_empty_rows(self):
        g = from_edges(5, [1], [3])  # rows 0, 2, 4 empty
        X = np.ones((5, 2))
        out = spmm(g, X)
        np.testing.assert_allclose(out[[0, 2, 4]], 0.0)
        np.testing.assert_allclose(out[1], 1.0)

    def test_shape_mismatch(self, small_grid):
        with pytest.raises(ValueError):
            spmm(small_grid, np.ones((3, 2)))

    def test_cost_recorded(self, small_random, rng):
        led = Ledger()
        with led.phase("TripleProd"):
            spmm(small_random, rng.standard_normal((small_random.n, 2)), ledger=led)
        tot = led.total().parallel
        assert tot.flops == pytest.approx(2.0 * small_random.nnz * 2)
        assert tot.random_lines > 0

    def test_matches_scipy(self, small_random, rng):
        import scipy.sparse as sp

        A = sp.csr_matrix(
            (
                np.ones(small_random.nnz),
                small_random.indices,
                small_random.indptr,
            ),
            shape=(small_random.n, small_random.n),
        )
        X = rng.standard_normal((small_random.n, 3))
        np.testing.assert_allclose(spmm(small_random, X), A @ X)


class TestLaplacian:
    def test_laplacian_matches_dense(self, small_random, rng):
        A = dense_adjacency(small_random)
        L = np.diag(A.sum(axis=1)) - A
        X = rng.standard_normal((small_random.n, 3))
        np.testing.assert_allclose(laplacian_spmm(small_random, X), L @ X)

    def test_laplacian_weighted(self, small_grid, rng):
        g = random_integer_weights(small_grid, 1, 5, seed=1)
        A = dense_adjacency(g)
        L = np.diag(A.sum(axis=1)) - A
        x = rng.standard_normal(g.n)
        np.testing.assert_allclose(laplacian_spmm(g, x), L @ x)

    def test_laplacian_annihilates_constant(self, small_random):
        ones = np.ones(small_random.n)
        np.testing.assert_allclose(
            laplacian_spmm(small_random, ones), 0.0, atol=1e-12
        )

    def test_quadratic_form_identity(self, small_random, rng):
        """y'Ly computed via SpMM equals the edgewise sum (section 2.1)."""
        y = rng.standard_normal(small_random.n)
        via_spmm = float(y @ laplacian_spmm(small_random, y))
        assert laplacian_quadratic_form(small_random, y) == pytest.approx(via_spmm)

    def test_quadratic_form_weighted(self, small_grid, rng):
        g = random_integer_weights(small_grid, 1, 7, seed=2)
        y = rng.standard_normal(g.n)
        assert laplacian_quadratic_form(g, y) == pytest.approx(
            float(y @ laplacian_spmm(g, y))
        )

    def test_quadratic_form_nonnegative(self, small_random, rng):
        y = rng.standard_normal(small_random.n)
        assert laplacian_quadratic_form(small_random, y) >= 0

    def test_walk_matrix(self, small_random, rng):
        A = dense_adjacency(small_random)
        W = A / A.sum(axis=1, keepdims=True)
        x = rng.standard_normal(small_random.n)
        np.testing.assert_allclose(walk_spmm(small_random, x), W @ x)

    def test_walk_preserves_constant(self, small_random):
        ones = np.ones(small_random.n)
        np.testing.assert_allclose(walk_spmm(small_random, ones), ones)

    def test_walk_rejects_isolated(self):
        g = from_edges(3, [0], [1])
        with pytest.raises(ValueError, match="isolated"):
            walk_spmm(g, np.ones(3))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 25), extra=st.integers(0, 40), seed=st.integers(0, 999))
def test_spmm_property_random_graphs(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 2))
    np.testing.assert_allclose(spmm(g, X), dense_adjacency(g) @ X, atol=1e-9)
