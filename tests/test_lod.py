"""Tests for the progressive level-of-detail subsystem (:mod:`repro.lod`).

Covers the spectral coarsening primitives, the hierarchy's conservation
and interlacing invariants (property-based where exact spectra are
cheap), the distortion checker, and the progressive serving wrapper's
first-paint / refine-to-full / epoch-invalidation protocol.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    complete_graph,
    cycle_graph,
    grid2d,
    path_graph,
    preprocess,
    uniform_random,
)
from repro.lod import (
    LodConfig,
    ProgressiveEngine,
    build_lod_hierarchy,
    measure_distortion,
    progressive_layout,
    tier_name,
)
from repro.multilevel import contract, spectral_matching
from repro.resilience import is_lod_tier, tier_rank
from repro.service import LayoutCache, LayoutEngine, LayoutRequest
from repro.service.http import layout_doc_from_query, parse_lod_value
from repro.validate import check_lod_distortion

from conftest import random_connected_graph


# ---------------------------------------------------------------------------
# spectral matching
# ---------------------------------------------------------------------------


class TestSpectralMatching:
    def test_valid_involution(self, small_random):
        match = spectral_matching(small_random, seed=3)
        n = small_random.n
        assert match.shape == (n,)
        # An involution: match[match[v]] == v, and no self-loops except
        # the fixed points (unmatched vertices map to themselves).
        assert np.array_equal(match[match], np.arange(n))

    def test_matched_pairs_are_edges(self, small_random):
        g = small_random
        match = spectral_matching(g, seed=1)
        src = np.repeat(np.arange(g.n), g.degrees)
        edges = set(zip(src.tolist(), g.indices.tolist()))
        for u in range(g.n):
            if match[u] != u:
                assert (u, int(match[u])) in edges

    def test_deterministic(self, small_random):
        a = spectral_matching(small_random, seed=7)
        b = spectral_matching(small_random, seed=7)
        assert np.array_equal(a, b)

    def test_shrinks_regular_graphs(self):
        # Regular graphs have uniform scores; the hash jitter must still
        # break ties well enough to land a near-perfect matching.
        g = grid2d(20, 20)
        match = spectral_matching(g, seed=0)
        matched = int((match != np.arange(g.n)).sum())
        assert matched >= 0.6 * g.n


# ---------------------------------------------------------------------------
# hierarchy invariants (property-based)
# ---------------------------------------------------------------------------


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=4, max_value=60))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return random_connected_graph(n, extra, seed)


class TestHierarchyProperties:
    @settings(max_examples=25, deadline=None)
    @given(g=connected_graphs(), seed=st.integers(0, 100))
    def test_mass_conservation_under_contract(self, g, seed):
        h = build_lod_hierarchy(
            g, coarsest_size=4, max_levels=6, seed=seed, measure_limit=0
        )
        total = float(h.mass.sum())
        for depth in range(1, h.depth + 1):
            assert h.mass_at(depth).sum() == pytest.approx(total)

    @settings(max_examples=25, deadline=None)
    @given(g=connected_graphs())
    def test_restrict_prolong_identity(self, g):
        h = build_lod_hierarchy(
            g, coarsest_size=4, max_levels=6, measure_limit=0
        )
        for depth in range(h.depth + 1):
            n_c = h.graph_at(depth).n
            x = np.arange(n_c, dtype=np.float64)[:, None] * [1.0, -2.0]
            fine = h.prolong_to_finest(x, depth, jitter=0.0)
            back = h.restrict_to(fine, depth)
            assert np.allclose(back, x, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(g=connected_graphs(), seed=st.integers(0, 50))
    def test_one_sided_interlacing(self, g, seed):
        # Galerkin coarsening can only raise generalized eigenvalues:
        # mu_i >= lambda_i for every measured step.
        h = build_lod_hierarchy(
            g, coarsest_size=4, max_levels=6, seed=seed, measure_limit=10_000
        )
        for lvl in h.levels:
            assert lvl.distortion is not None
            assert lvl.distortion >= 1.0 - 1e-8

    def test_mapping_shapes_compose(self, small_grid):
        h = build_lod_hierarchy(small_grid, coarsest_size=8, measure_limit=0)
        assert h.depth >= 2
        assert h.sizes()[0] == small_grid.n
        for depth in range(h.depth + 1):
            mapping = h.mapping_to_finest(depth)
            assert mapping.shape == (small_grid.n,)
            assert mapping.max() < h.graph_at(depth).n
        # Depth 0 composes to the identity.
        assert np.array_equal(h.mapping_to_finest(0), np.arange(small_grid.n))


class TestDistortionExactSpectra:
    """Distortion against graphs whose spectra are known in closed form."""

    @pytest.mark.parametrize(
        "g",
        [path_graph(40), cycle_graph(48), grid2d(7, 9), complete_graph(24)],
        ids=["path", "cycle", "grid", "complete"],
    )
    def test_distortion_within_bound(self, g):
        h = build_lod_hierarchy(
            g, coarsest_size=4, max_levels=8, measure_limit=10_000
        )
        assert h.depth >= 1
        assert h.max_distortion is not None
        assert h.max_distortion < 3.0

    def test_path_exact_eigenvalues(self):
        # The path's pencil eigenvalues are 2 - 2 cos(pi k / n) for unit
        # mass; measure_distortion against itself must be exactly 1.
        g = path_graph(16)
        ones = np.ones(g.n)
        assert measure_distortion(g, ones, g, ones) == pytest.approx(1.0)

    def test_complete_graph_single_level(self):
        # K_n contracts to ~n/2 supervertices; nonzero eigenvalues of
        # K_n are all n, and Galerkin keeps ratios modest.
        g = complete_graph(16)
        h = build_lod_hierarchy(
            g, coarsest_size=2, max_levels=3, measure_limit=1_000
        )
        assert h.max_distortion is not None and h.max_distortion >= 1.0


# ---------------------------------------------------------------------------
# checker + tier plumbing
# ---------------------------------------------------------------------------


class TestCheckerAndTiers:
    def test_check_lod_distortion_ok(self, small_grid):
        h = build_lod_hierarchy(
            small_grid, coarsest_size=16, measure_limit=10_000
        )
        res = check_lod_distortion(h, bound=3.0)
        assert res.ok
        assert res.check == "lod.distortion"

    def test_check_lod_distortion_violation(self, small_grid):
        h = build_lod_hierarchy(
            small_grid, coarsest_size=16, measure_limit=10_000
        )
        res = check_lod_distortion(h, bound=1.0 + 1e-12)
        assert not res.ok

    def test_check_unmeasured_hierarchy_passes(self, small_grid):
        h = build_lod_hierarchy(small_grid, coarsest_size=16, measure_limit=0)
        assert h.max_distortion is None
        assert check_lod_distortion(h, bound=3.0).ok

    def test_tier_names_and_ranks(self):
        assert tier_name(0) == "full"
        assert tier_name(3) == "lod-3"
        assert tier_rank("full") == 0
        assert tier_rank("lod-1") == 1
        assert tier_rank("lod-7") == 7
        assert tier_rank("lod-zzz") == 999
        # Coarser tier => strictly larger rank; ladder tiers rank after
        # every lod tier (a coarse *exact* layout beats an approximation).
        assert tier_rank("full") < tier_rank("lod-1") < tier_rank("lod-2")
        assert tier_rank("lod-9") < tier_rank("baseline")
        assert is_lod_tier("lod-4")
        assert not is_lod_tier("full")
        assert not is_lod_tier(None)

    def test_lod_config_parse(self):
        assert LodConfig.parse(None) is None
        assert LodConfig.parse("off") is None
        assert LodConfig.parse(False) is None
        assert LodConfig.parse("auto").mode == "auto"
        assert LodConfig.parse(True).mode == "auto"
        cfg = LodConfig.parse(250)
        assert cfg.mode == "budget" and cfg.budget_ms == 250
        assert LodConfig.parse("125.5").budget_ms == pytest.approx(125.5)
        with pytest.raises(ValueError):
            LodConfig.parse(-5)
        with pytest.raises(ValueError):
            LodConfig.parse("nonsense")

    def test_parse_lod_value_http(self):
        from repro.service import BadRequest

        assert parse_lod_value(None) is None
        assert parse_lod_value("off") == "off"
        assert parse_lod_value("auto") == "auto"
        assert parse_lod_value("250") == pytest.approx(250.0)
        assert parse_lod_value(True) == "auto"
        with pytest.raises(BadRequest):
            parse_lod_value("fast")
        with pytest.raises(BadRequest):
            parse_lod_value(-1)

    def test_layout_doc_from_query(self):
        from repro.service import BadRequest

        doc = layout_doc_from_query(
            "graph=road&scale=small&seed=3&s=8&lod=auto&include_coords=false"
        )
        assert doc["graph"] == "road"
        assert doc["seed"] == 3 and doc["s"] == 8
        assert doc["lod"] == "auto"
        assert doc["include_coords"] is False
        with pytest.raises(BadRequest):
            layout_doc_from_query("graph=x&bogus=1")


# ---------------------------------------------------------------------------
# progressive generator
# ---------------------------------------------------------------------------


class TestProgressiveLayout:
    def test_monotone_tiers_end_full(self, tiny_mesh):
        frames = list(
            progressive_layout(
                tiny_mesh,
                8,
                config=LodConfig(min_vertices=1, coarsest_size=64),
            )
        )
        assert len(frames) >= 3
        ranks = [tier_rank(f.tier) for f in frames]
        assert ranks == sorted(ranks, reverse=True)
        assert frames[-1].tier == "full"
        for f in frames:
            assert f.result.coords.shape == (tiny_mesh.n, 2)
            assert f.result.quality_tier == f.tier

    def test_small_graph_single_full_frame(self, path10):
        frames = list(progressive_layout(path10, 4))
        assert [f.tier for f in frames] == ["full"]


# ---------------------------------------------------------------------------
# ProgressiveEngine
# ---------------------------------------------------------------------------


_LOD_CFG = LodConfig(min_vertices=1, coarsest_size=64, refine_sweeps=1)


def _grid_loader(name, scale, seed):
    if name != "grid":
        raise KeyError(name)
    return preprocess(grid2d(30, 30), name="grid")


def _poll_until_full(eng, req, budget=30.0):
    tiers = []
    deadline = time.time() + budget
    while time.time() < deadline:
        resp = eng.submit(req)
        tier = resp.result.quality_tier
        if not tiers or tier != tiers[-1]:
            tiers.append(tier)
        if tier == "full":
            return tiers, resp
        time.sleep(0.02)
    raise AssertionError(f"never reached full tier; saw {tiers}")


class TestProgressiveEngine:
    @pytest.fixture()
    def eng(self):
        e = ProgressiveEngine(
            LayoutEngine(graph_loader=_grid_loader, workers=2, timeout=60),
            config=_LOD_CFG,
        )
        yield e
        e.close()

    def test_first_paint_is_coarse_then_converges(self, eng):
        req = LayoutRequest(graph="grid", s=8, lod="auto")
        resp = eng.submit(req)
        assert resp.status == "computed"
        first = resp.result.quality_tier
        assert is_lod_tier(first)
        assert resp.result.coords.shape == (900, 2)
        tiers, final = _poll_until_full(eng, req)
        ranks = [tier_rank(t) for t in [first] + tiers]
        assert ranks == sorted(ranks, reverse=True)
        assert final.result.quality_tier == "full"
        snap = eng.stats()
        assert snap["counters"]["lod.first_paint"] == 1
        assert snap["counters"]["lod.converged"] >= 1
        assert snap["gauges"]["lod.refine_backlog"] == 0.0
        assert len(snap["lod"]["hierarchies"]) == 1

    def test_converged_requests_hit_cache_full(self, eng):
        req = LayoutRequest(graph="grid", s=8, lod="auto")
        eng.submit(req)
        _poll_until_full(eng, req)
        resp = eng.submit(req)
        assert resp.status in ("memory-hit", "disk-hit")
        assert resp.result.quality_tier == "full"

    def test_non_lod_request_never_sees_lod_cache(self, eng):
        req = LayoutRequest(graph="grid", s=8, lod="auto")
        first = eng.submit(req)
        assert is_lod_tier(first.result.quality_tier)
        # Same fingerprint, but with LOD off: the coarse cache entry
        # must be treated as a miss and a genuine full layout computed.
        resp = eng.submit(LayoutRequest(graph="grid", s=8))
        assert resp.result.quality_tier == "full"
        assert eng.stats()["counters"]["lod.tier_misses"] >= 1
        _poll_until_full(eng, req)

    def test_update_invalidates_refinement(self, eng):
        req = LayoutRequest(graph="grid", s=8, lod="auto")
        eng.submit(req)
        from repro.service import UpdateRequest

        eng.update(UpdateRequest(graph="grid", inserts=((0, 899),)))
        # The refinement chain for the pre-update content must abort or
        # its publishes be rejected; polling converges on the *new*
        # graph's full layout regardless.
        tiers, final = _poll_until_full(eng, req)
        assert final.result.quality_tier == "full"
        assert final.result.coords.shape == (900, 2)

    def test_small_graph_bypasses_lod(self):
        e = ProgressiveEngine(
            LayoutEngine(graph_loader=_grid_loader, workers=2),
            config=LodConfig(min_vertices=10_000),
        )
        try:
            resp = e.submit(LayoutRequest(graph="grid", s=6, lod="auto"))
            assert resp.result.quality_tier == "full"
            assert e.stats()["counters"]["lod.bypass_small"] == 1
        finally:
            e.close()

    def test_lod_off_by_default(self, eng):
        resp = eng.submit(LayoutRequest(graph="grid", s=6))
        assert resp.result.quality_tier == "full"
        assert "lod.first_paint" not in eng.stats()["counters"]

    def test_default_mode_applies_to_bare_requests(self):
        e = ProgressiveEngine(
            LayoutEngine(graph_loader=_grid_loader, workers=2),
            lod="auto",
            config=_LOD_CFG,
        )
        try:
            resp = e.submit(LayoutRequest(graph="grid", s=6))
            assert is_lod_tier(resp.result.quality_tier)
            # Per-request off overrides the engine default.
            resp = e.submit(LayoutRequest(graph="grid", s=7, lod="off"))
            assert resp.result.quality_tier == "full"
        finally:
            e.close()

    def test_in_memory_graph_lod(self, eng, tiny_mesh):
        req = LayoutRequest(graph=tiny_mesh, s=8, lod="auto")
        resp = eng.submit(req)
        assert is_lod_tier(resp.result.quality_tier)
        tiers, final = _poll_until_full(eng, req)
        assert final.result.quality_tier == "full"

    def test_budget_mode_picks_depth(self, eng):
        resp = eng.submit(LayoutRequest(graph="grid", s=8, lod=0.001))
        # A near-zero budget must still serve (coarsest available tier).
        assert resp.result.quality_tier != ""
        snap = eng.stats()
        assert snap["counters"]["lod.requests"] >= 1

    def test_stats_has_lod_section(self, eng):
        snap = eng.stats()
        assert snap["lod"]["distortion_bound"] == _LOD_CFG.distortion_bound
        assert snap["lod"]["hierarchies"] == []
