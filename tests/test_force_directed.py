"""Tests for the Fruchterman-Reingold baseline."""

import numpy as np
import pytest

from repro import parhde
from repro.baselines import fruchterman_reingold
from repro.graph import cycle_graph, grid2d
from repro.metrics import sampled_stress
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger


def test_shapes_and_determinism(small_grid):
    a = fruchterman_reingold(small_grid, iterations=20, seed=3)
    b = fruchterman_reingold(small_grid, iterations=20, seed=3)
    assert a.coords.shape == (small_grid.n, 2)
    np.testing.assert_array_equal(a.coords, b.coords)
    assert np.all(np.isfinite(a.coords))


def test_improves_over_random(small_grid):
    res = fruchterman_reingold(small_grid, iterations=150, seed=0)
    rng = np.random.default_rng(0)
    rand = rng.random((small_grid.n, 2))
    assert sampled_stress(small_grid, res.coords, seed=1) < sampled_stress(
        small_grid, rand, seed=1
    )


def test_cycle_untangles():
    g = cycle_graph(30)
    res = fruchterman_reingold(g, iterations=300, seed=1)
    # Edge lengths become fairly uniform when the ring relaxes.
    u, v = g.edge_list()
    lengths = np.sqrt(((res.coords[u] - res.coords[v]) ** 2).sum(axis=1))
    assert lengths.std() / lengths.mean() < 0.6


def test_warm_start_from_parhde(tiny_mesh):
    hde = parhde(tiny_mesh, s=10, seed=0)
    res = fruchterman_reingold(
        tiny_mesh, iterations=30, seed=0, coords0=hde.coords
    )
    # A good start survives a short FR polish.
    assert sampled_stress(tiny_mesh, res.coords, seed=2) < 2 * sampled_stress(
        tiny_mesh, hde.coords, seed=2
    )


def test_cost_recorded_scales_with_iterations(small_grid):
    def cost_of(iters):
        led = Ledger()
        with led.phase("FR"):
            fruchterman_reingold(small_grid, iterations=iters, seed=0, ledger=led)
        return simulate_ledger(led, BRIDGES_RSM, 28)

    t10, t50 = cost_of(10), cost_of(50)
    assert t10 > 0
    assert t50 > 4 * t10  # linear in the iteration count
    # The full cross-algorithm comparison (the section 4.2 order-of-
    # magnitude claim) lives in benchmarks/bench_force_directed.py.


def test_zero_iterations_keeps_start(small_grid):
    rng = np.random.default_rng(0)
    start = rng.random((small_grid.n, 2)) * 5
    res = fruchterman_reingold(small_grid, iterations=0, coords0=start)
    assert res.iterations == 0
    # Rescaled into the canonical box, but the shape is preserved.
    assert res.coords.shape == start.shape


def test_validation(small_grid):
    with pytest.raises(ValueError):
        fruchterman_reingold(small_grid, iterations=-1)
    with pytest.raises(ValueError):
        fruchterman_reingold(small_grid, repulsion_samples=0)
    with pytest.raises(ValueError):
        fruchterman_reingold(small_grid, coords0=np.ones((2, 2)))
