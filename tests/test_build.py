"""Tests for preprocessing: LCC extraction, induced subgraphs, relabeling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    from_edges,
    induced_subgraph,
    is_connected,
    preprocess,
    relabel,
)


class TestPreprocess:
    def test_extracts_largest_component(self):
        # Components: {0,1,2} (triangle), {3,4}, {5} isolated.
        g = from_edges(6, [0, 1, 2, 3], [1, 2, 0, 4])
        lcc = preprocess(g)
        assert lcc.n == 3
        assert lcc.m == 3
        assert is_connected(lcc)

    def test_preserves_relative_order(self):
        # LCC is {2, 4, 5}; they must be renumbered 0, 1, 2 in id order.
        g = from_edges(6, [2, 4, 0], [4, 5, 1])
        lcc = preprocess(g)
        assert lcc.n == 3
        # vertex 2 -> 0, 4 -> 1, 5 -> 2; edges (2,4) and (4,5).
        assert lcc.has_edge(0, 1)
        assert lcc.has_edge(1, 2)
        assert not lcc.has_edge(0, 2)

    def test_connected_input_unchanged(self, small_grid):
        out = preprocess(small_grid)
        assert out.n == small_grid.n
        assert out.m == small_grid.m
        np.testing.assert_array_equal(out.indices, small_grid.indices)

    def test_tie_goes_to_smallest_labelled_component(self):
        g = from_edges(4, [0, 2], [1, 3])  # two 2-vertex components
        lcc = preprocess(g)
        assert lcc.n == 2
        assert lcc.has_edge(0, 1)

    def test_empty(self):
        g = from_edges(0, [], [])
        assert preprocess(g).n == 0

    def test_weighted_preserved(self):
        g = from_edges(5, [0, 1, 3], [1, 2, 4], weights=[2.0, 3.0, 9.0])
        lcc = preprocess(g)
        assert lcc.n == 3
        assert lcc.is_weighted
        assert sorted(lcc.weights.tolist()) == [2.0, 2.0, 3.0, 3.0]


class TestInducedSubgraph:
    def test_mask_and_ids_agree(self, small_grid):
        ids = np.array([0, 1, 2, 17, 18, 19])
        mask = np.zeros(small_grid.n, dtype=bool)
        mask[ids] = True
        g1 = induced_subgraph(small_grid, ids)
        g2 = induced_subgraph(small_grid, mask)
        np.testing.assert_array_equal(g1.indptr, g2.indptr)
        np.testing.assert_array_equal(g1.indices, g2.indices)

    def test_edges_only_inside(self):
        g = from_edges(5, [0, 1, 2, 3], [1, 2, 3, 4])  # path
        sub = induced_subgraph(g, np.array([0, 1, 3, 4]))
        assert sub.n == 4
        # Surviving edges: (0,1) and (3,4) -> new ids (0,1), (2,3).
        assert sub.m == 2
        assert sub.has_edge(0, 1)
        assert sub.has_edge(2, 3)

    def test_validates(self, small_random):
        sub = induced_subgraph(
            small_random, np.arange(0, small_random.n, 2)
        )
        sub.validate()

    def test_rejects_bad_ids(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            induced_subgraph(small_grid, np.array([small_grid.n]))
        with pytest.raises(ValueError, match="mask length"):
            induced_subgraph(small_grid, np.zeros(3, dtype=bool))


class TestRelabel:
    def test_identity(self, small_grid):
        out = relabel(small_grid, np.arange(small_grid.n))
        np.testing.assert_array_equal(out.indices, small_grid.indices)

    def test_roundtrip(self, small_random, rng):
        perm = rng.permutation(small_random.n)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(len(perm))
        back = relabel(relabel(small_random, perm), inv)
        np.testing.assert_array_equal(back.indptr, small_random.indptr)
        np.testing.assert_array_equal(back.indices, small_random.indices)

    def test_degree_multiset_invariant(self, small_random, rng):
        perm = rng.permutation(small_random.n)
        out = relabel(small_random, perm)
        assert sorted(out.degrees.tolist()) == sorted(
            small_random.degrees.tolist()
        )
        out.validate()

    def test_adjacency_follows_permutation(self):
        g = from_edges(3, [0, 1], [1, 2])
        out = relabel(g, np.array([2, 0, 1]))
        # old edges (0,1), (1,2) -> (2,0), (0,1)
        assert out.has_edge(2, 0)
        assert out.has_edge(0, 1)
        assert not out.has_edge(1, 2)

    def test_weights_follow(self):
        g = from_edges(3, [0, 1], [1, 2], weights=[5.0, 7.0])
        out = relabel(g, np.array([2, 0, 1]))
        # edge (2,0) carries 5.0, edge (0,1) carries 7.0
        i = np.searchsorted(out.neighbors(0), 1)
        assert out.edge_weights_of(0)[i] == 7.0

    def test_rejects_non_permutation(self, small_grid):
        with pytest.raises(ValueError, match="permutation"):
            relabel(small_grid, np.zeros(small_grid.n, dtype=np.int64))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 30),
    k=st.integers(0, 60),
    seed=st.integers(0, 999),
)
def test_preprocess_output_connected(n, k, seed):
    """Property: the LCC of any edge soup is connected and valid."""
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=k)
    v = rng.integers(0, n, size=k)
    g = preprocess(from_edges(n, u, v))
    g.validate()
    if g.n > 0:
        assert is_connected(g)
