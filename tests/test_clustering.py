"""Tests for the SBM generator, label propagation, and weighted-HDE
weight-interpretation semantics."""

import numpy as np
import pytest

from repro import parhde
from repro.graph import (
    grid2d,
    is_connected,
    planted_partition,
    preprocess,
    random_integer_weights,
)
from repro.partition import label_propagation


def _ground_truth(n: int, k: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64) * k // n


class TestPlantedPartition:
    def test_structure(self):
        g = planted_partition(800, 4, degree_in=14, degree_out=1, seed=0)
        g.validate()
        assert g.n == 800
        # Density near the expected (din + dout) / 2 per vertex.
        assert 5 < g.average_degree < 20

    def test_assortativity(self):
        g = planted_partition(600, 3, degree_in=12, degree_out=1, seed=1)
        truth = _ground_truth(600, 3)
        u, v = g.edge_list()
        internal = (truth[u] == truth[v]).mean()
        assert internal > 0.8  # most edges stay inside a block

    def test_deterministic(self):
        a = planted_partition(300, 3, seed=5)
        b = planted_partition(300, 3, seed=5)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_partition(10, 0)
        with pytest.raises(ValueError):
            planted_partition(10, 20)
        with pytest.raises(ValueError):
            planted_partition(10, 2, degree_in=-1)


class TestLabelPropagation:
    def test_recovers_clear_communities(self):
        g = preprocess(
            planted_partition(600, 4, degree_in=16, degree_out=0.5, seed=0)
        )
        res = label_propagation(g, seed=0)
        assert res.converged
        assert 3 <= res.communities <= 6

    def test_labels_dense(self):
        g = preprocess(planted_partition(300, 3, degree_in=14, degree_out=0.5))
        res = label_propagation(g, seed=1)
        assert set(np.unique(res.labels)) == set(range(res.communities))

    def test_clique_single_community(self):
        from repro.graph import complete_graph

        res = label_propagation(complete_graph(12), seed=0)
        assert res.communities == 1
        assert res.converged

    def test_disconnected_components_separate(self):
        from repro.graph import from_edges

        # Two triangles.
        g = from_edges(6, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3])
        res = label_propagation(g, seed=0)
        assert res.communities == 2
        assert len(set(res.labels[:3])) == 1
        assert len(set(res.labels[3:])) == 1

    def test_weighted_ties_broken_by_weight(self):
        from repro.graph import from_edges

        # Vertex 1 sits between two pairs; the heavy side must win.
        g = from_edges(
            4, [0, 1, 2], [1, 2, 3], weights=[10.0, 1.0, 10.0]
        )
        res = label_propagation(g, seed=0)
        assert res.labels[0] == res.labels[1]
        assert res.labels[2] == res.labels[3]
        assert res.labels[0] != res.labels[2]

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            label_propagation(small_grid, max_sweeps=0)


class TestWeightInterpretation:
    @pytest.fixture()
    def weighted_mesh(self, tiny_mesh):
        return random_integer_weights(tiny_mesh, 1, 16, seed=0)

    def test_both_modes_run(self, weighted_mesh):
        a = parhde(weighted_mesh, s=8, seed=0, weighted=True)
        b = parhde(
            weighted_mesh, s=8, seed=0, weighted=True,
            weight_interpretation="similarity",
        )
        assert np.all(np.isfinite(a.coords))
        assert np.all(np.isfinite(b.coords))
        assert not np.allclose(a.coords, b.coords)

    def test_similarity_inverts_traversal_lengths(self, weighted_mesh):
        """Heavy (similar) edges are short paths under 'similarity'."""
        res = parhde(
            weighted_mesh, s=4, seed=0, weighted=True,
            weight_interpretation="similarity",
        )
        # Distances from the first pivot must match SSSP on inverted
        # weights.
        from repro.sssp import dijkstra

        g_inv = weighted_mesh.with_weights(
            weighted_mesh.weights.max() / weighted_mesh.weights
        )
        ref = dijkstra(g_inv, int(res.pivots[0]))
        np.testing.assert_allclose(res.B[:, 0], ref)

    def test_d_matrix_uses_original_similarities(self, weighted_mesh):
        res = parhde(
            weighted_mesh, s=8, seed=0, weighted=True,
            weight_interpretation="similarity",
        )
        d = weighted_mesh.weighted_degrees  # similarity degrees
        G = res.S.T @ (d[:, None] * res.S)
        np.testing.assert_allclose(G, np.eye(res.S.shape[1]), atol=1e-8)

    def test_bad_interpretation(self, weighted_mesh):
        with pytest.raises(ValueError, match="interpretation"):
            parhde(
                weighted_mesh, s=4, weighted=True,
                weight_interpretation="frequency",
            )

    def test_params_echo(self, weighted_mesh):
        res = parhde(
            weighted_mesh, s=4, seed=0, weighted=True,
            weight_interpretation="similarity",
        )
        assert res.params["weight_interpretation"] == "similarity"
