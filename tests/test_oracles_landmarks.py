"""Tests for the extra oracles (sequential BFS, Bellman-Ford) and the
landmark distance sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import bfs_distances, bfs_sequential
from repro.graph import build_landmark_index, grid2d, random_integer_weights
from repro.sssp import bellman_ford, delta_stepping, dijkstra

from conftest import random_connected_graph


class TestSequentialBFS:
    def test_matches_parallel(self, small_random):
        for src in (0, 17, 101):
            ref, _ = bfs_distances(small_random, src)
            np.testing.assert_array_equal(
                bfs_sequential(small_random, src), ref
            )

    def test_unreachable(self):
        from repro.graph import from_edges

        g = from_edges(4, [0], [1])
        dist = bfs_sequential(g, 0)
        assert dist[2] == -1 and dist[3] == -1

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            bfs_sequential(small_grid, -1)


class TestBellmanFord:
    def test_matches_dijkstra_weighted(self, small_random):
        g = random_integer_weights(small_random, 1, 16, seed=0)
        ref = dijkstra(g, 3)
        dist, rounds = bellman_ford(g, 3)
        np.testing.assert_allclose(dist, ref)
        assert 0 < rounds < g.n

    def test_unweighted_rounds_equal_eccentricity(self, small_grid):
        dist, rounds = bellman_ford(small_grid, 0)
        ref, _ = bfs_distances(small_grid, 0)
        np.testing.assert_allclose(dist, ref.astype(float))
        assert rounds == ref.max()

    def test_round_limit(self, path10):
        dist, rounds = bellman_ford(path10, 0, max_rounds=3)
        assert rounds == 3
        assert dist[9] == np.inf  # not yet reached

    def test_empty_graph(self):
        from repro.graph import from_edges

        dist, rounds = bellman_ford(from_edges(3, [], []), 0)
        assert rounds == 0
        assert np.isinf(dist[1])

    def test_giant_delta_equals_bellman_rounds_flavour(self, small_grid):
        """One huge bucket = Bellman-Ford-like repeated light phases."""
        g = random_integer_weights(small_grid, 1, 8, seed=1)
        _, bf_rounds = bellman_ford(g, 0)
        _, stats = delta_stepping(g, 0, 1e12)
        assert stats.buckets_processed == 1
        # Inner light iterations track the BF round count.
        assert abs(stats.inner_iterations - bf_rounds) <= 2


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 40), extra=st.integers(0, 60), seed=st.integers(0, 999))
def test_three_oracles_agree_property(n, extra, seed):
    g = random_connected_graph(n, extra, seed)
    src = seed % n
    a, _ = bfs_distances(g, src)
    b = bfs_sequential(g, src)
    c, _ = bellman_ford(g, src)
    np.testing.assert_array_equal(a, b)
    np.testing.assert_allclose(c, a.astype(float))


class TestLandmarks:
    @pytest.fixture(scope="class")
    def index_and_truth(self):
        g = grid2d(15, 15)
        idx = build_landmark_index(g, s=8, seed=0)
        truth = {}
        for src in (0, 37, 224):
            truth[src], _ = bfs_distances(g, src)
        return g, idx, truth

    def test_bounds_bracket_truth(self, index_and_truth):
        g, idx, truth = index_and_truth
        for src, dist in truth.items():
            v = np.arange(g.n)
            ub = idx.upper_bound(np.full(g.n, src), v)
            lb = idx.lower_bound(np.full(g.n, src), v)
            assert np.all(lb <= dist + 1e-9)
            assert np.all(dist <= ub + 1e-9)

    def test_exact_for_landmark_pairs(self, index_and_truth):
        g, idx, truth = index_and_truth
        lm = int(idx.landmarks[0])
        dist, _ = bfs_distances(g, lm)
        for v in (3, 80, 170):
            assert idx.upper_bound(lm, v) == pytest.approx(float(dist[v]))
            assert idx.lower_bound(lm, v) == pytest.approx(float(dist[v]))

    def test_estimate_reasonable(self, index_and_truth):
        g, idx, truth = index_and_truth
        src = 37
        est = idx.estimate(np.full(g.n, src), np.arange(g.n))
        err = np.abs(est - truth[src])
        # Farthest-first landmarks on a grid give tight sketches.
        assert np.median(err) <= 2.0

    def test_scalar_queries(self, index_and_truth):
        _, idx, _ = index_and_truth
        assert isinstance(idx.upper_bound(0, 5), float)
        assert idx.upper_bound(4, 4) >= 0.0
        assert idx.lower_bound(4, 4) == 0.0

    def test_disconnected_rejected(self):
        from repro.graph import from_edges

        g = from_edges(4, [0, 2], [1, 3])
        with pytest.raises(ValueError, match="connected"):
            build_landmark_index(g, s=2)
