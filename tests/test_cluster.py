"""Tests for :mod:`repro.cluster` — ring, protocol, policy, and the
live multi-process serving tier (router + workers + HTTP frontend).

Process-spawning fixtures are module-scoped: workers cost ~1 s of
interpreter startup each, so the integration tests share one 2-worker
cluster.  Tests that mutate cluster-wide sticky state (drain) build
their own router.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import (
    ClusterRouter,
    HashRing,
    ProtocolError,
    WorkerUnavailable,
    balanced_assignment,
    compare_policies,
    graph_key,
    hash_assignment,
    make_cluster_server,
    recv_msg,
    send_msg,
)
from repro.cluster.policy import LivePlacement
from repro.resilience import is_lod_tier, tier_rank
from repro.parallel import shard_times
from repro.parallel.machine import BRIDGES_RSM
from repro.service.engine import BadRequest, Overloaded

TINY = {"scale": "tiny", "s": 6, "seed": 0}


# ---------------------------------------------------------------------------
# consistent-hash ring
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_empty_ring_has_no_owner(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.owner("x")

    def test_deterministic_ownership(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            for node in range(4):
                ring.add(node)
        keys = [graph_key(f"g{i}") for i in range(100)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_all_nodes_get_keys(self):
        ring = HashRing(vnodes=64)
        for node in range(4):
            ring.add(node)
        owners = {ring.owner(graph_key(f"g{i}")) for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_removal_moves_only_dead_nodes_keys(self):
        ring = HashRing(vnodes=64)
        for node in range(4):
            ring.add(node)
        keys = [graph_key(f"g{i}") for i in range(300)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove(2)
        for k in keys:
            after = ring.owner(k)
            if before[k] != 2:
                # Consistent hashing's contract: surviving shards keep
                # their keys; only the dead shard's keys move.
                assert after == before[k]
            else:
                assert after != 2

    def test_preference_lists_distinct_nodes(self):
        ring = HashRing()
        for node in range(3):
            ring.add(node)
        pref = list(ring.preference(graph_key("barth")))
        assert sorted(pref) == [0, 1, 2]
        assert pref[0] == ring.owner(graph_key("barth"))

    def test_len_and_contains(self):
        ring = HashRing()
        ring.add(7)
        assert len(ring) == 1 and 7 in ring and 8 not in ring
        ring.remove(7)
        assert len(ring) == 0 and 7 not in ring

    def test_graph_key_separates_identities(self):
        assert graph_key("a", "tiny", 0) != graph_key("a", "tiny", 1)
        assert graph_key("a", "tiny", 0) != graph_key("a", "small", 0)
        assert graph_key("ab", "c") != graph_key("a", "bc")


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            doc = {"op": "layout", "body": {"graph": "barth", "n": [1, 2]}}
            send_msg(a, doc)
            assert recv_msg(b) == doc

    def test_eof_mid_frame_raises(self):
        import struct

        a, b = socket.socketpair()
        with b:
            # Header promises 1000 bytes; the peer dies after one.
            a.sendall(struct.pack("!I", 1000) + b"{")
            a.close()
            with pytest.raises(ProtocolError):
                recv_msg(b)

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            import struct

            a.sendall(struct.pack("!I", 2**31))
            with pytest.raises(ProtocolError):
                recv_msg(b)


# ---------------------------------------------------------------------------
# machine model: distributed dimension + routing policy comparison
# ---------------------------------------------------------------------------


class TestShardModel:
    def test_message_time_is_alpha_beta(self):
        from dataclasses import replace

        m = replace(BRIDGES_RSM, alpha=1e-4, beta=1e-9)
        assert m.message_time(0) == pytest.approx(1e-4)
        assert m.message_time(1e6) == pytest.approx(1e-4 + 1e-3)

    def test_with_shards(self):
        m4 = BRIDGES_RSM.with_shards(4)
        assert m4.shards == 4
        assert m4.cores == BRIDGES_RSM.cores
        assert BRIDGES_RSM.shards == 1  # original untouched

    def test_shard_times_prices_each_shard(self):
        m = BRIDGES_RSM.with_shards(2)
        assignment = {0: [(0.4, 1000.0)], 1: [(0.1, 1000.0), (0.1, 0.0)]}
        times = shard_times(assignment, m, 1)
        assert set(times) == {0, 1}
        assert times[0] > times[1] > 0

    def test_modeled_scaling_with_more_shards(self):
        # Enough uniform requests that hashing spreads them: the modeled
        # makespan must drop as the shard count grows.
        costs = {f"g{i}": (0.05, 64e3) for i in range(64)}
        mk = {
            s: compare_policies(costs, BRIDGES_RSM.with_shards(s), p=1)
            for s in (1, 2, 4)
        }
        assert mk[2]["hash"]["makespan"] < mk[1]["hash"]["makespan"]
        assert mk[4]["hash"]["makespan"] < mk[2]["hash"]["makespan"]

    def test_balanced_never_worse_than_hash(self):
        costs = {f"g{i}": (0.01 * (i + 1), 32e3) for i in range(40)}
        cmp = compare_policies(costs, BRIDGES_RSM.with_shards(4), p=1)
        assert cmp["hash_over_balanced"] >= 1.0
        assert cmp["balanced"]["imbalance"] >= 1.0

    def test_hash_assignment_covers_everything(self):
        costs = {f"g{i}": (0.01, 0.0) for i in range(50)}
        assignment = hash_assignment(costs, 4)
        assert sum(len(v) for v in assignment.values()) == 50
        balanced = balanced_assignment(
            costs, 4, BRIDGES_RSM.with_shards(4), 1
        )
        assert sum(len(v) for v in balanced.values()) == 50


# ---------------------------------------------------------------------------
# live cluster
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster():
    router = ClusterRouter(
        2,
        compute_threads=1,
        timeout=60.0,
        cache_mb=32.0,
        heartbeat_interval=0.2,
        breaker_threshold=2,
        breaker_reset=5.0,
    ).start()
    yield router
    router.close()


def _wait_workers(router: ClusterRouter, n: int, timeout: float = 30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if router.alive_workers >= n:
            return
        time.sleep(0.1)
    raise AssertionError(f"cluster never reached {n} live workers")


class TestClusterServing:
    def test_layout_cold_then_cache_hit(self, cluster):
        body = {"graph": "barth", **TINY}
        cold = cluster.layout(body)
        assert cold["status"] == "computed"
        assert len(cold["coords"]) == cold["n"]
        warm = cluster.layout(body)
        assert warm["cache_hit"] and warm["status"] == "memory-hit"
        assert warm["fingerprint"] == cold["fingerprint"]

    def test_update_bumps_epoch_on_owning_shard(self, cluster):
        body = {"graph": "pa", **TINY}
        before = cluster.layout(body)
        up = cluster.update(
            {"graph": "pa", "scale": "tiny", "seed": 0, "inserts": [[0, 2]]}
        )
        assert up["epoch"] == 1
        after = cluster.layout(body)
        # The owning shard invalidated: fresh fingerprint, recomputed.
        assert after["fingerprint"] != before["fingerprint"]
        assert after["status"] == "computed"

    def test_include_coords_false_strips(self, cluster):
        body = {"graph": "barth", **TINY, "include_coords": False}
        resp = cluster.layout(body)
        assert "coords" not in resp and resp["cache_hit"]

    def test_bad_request_relayed_not_retried(self, cluster):
        deaths = cluster.telemetry.counter("router.worker_deaths").value
        with pytest.raises(BadRequest):
            cluster.layout({"graph": "no-such-graph", **TINY})
        assert cluster.telemetry.counter("router.worker_deaths").value == deaths

    def test_cross_worker_coalescing(self, cluster):
        body = {"graph": "ecology", **TINY}
        owner = cluster.owner_of("ecology", "tiny", 0)
        # Slow the owner down so concurrent identical requests pile up
        # behind the leader's flight.
        cluster.arm_chaos(
            owner, "cluster.worker.request", sleep=0.5, times=1
        )
        results: list[dict] = []

        def _one():
            results.append(cluster.layout(body))

        threads = [threading.Thread(target=_one) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        statuses = sorted(r["status"] for r in results)
        assert statuses.count("coalesced") >= 1
        assert len({r["fingerprint"] for r in results}) == 1
        assert cluster.telemetry.counter("router.coalesced").value >= 1

    def test_stats_aggregation(self, cluster):
        cluster.layout({"graph": "barth", **TINY})
        stats = cluster.stats()
        assert stats["mode"] == "cluster"
        assert stats["ring"]["workers"] == len(stats["workers"]) == 2
        agg = stats["aggregate"]
        assert agg["workers_up"] == 2
        assert agg["counters"]["requests"] >= 1
        # Worker counters really sum: per-worker requests add up.
        per_worker = sum(
            s["counters"].get("requests", 0)
            for s in stats["workers"].values()
        )
        assert agg["counters"]["requests"] == per_worker
        assert "breakers_open" in agg
        assert "router.requests" in stats["router"]["counters"]

    def test_healthz_schema(self, cluster):
        health = cluster.healthz()
        assert health == {"status": "ok", "workers": 2}

    def test_worker_death_mid_request_reshards_and_restarts(self, cluster):
        # Pick a graph owned by a known worker, then make that worker's
        # process die the moment the request reaches it.
        victim = cluster.owner_of("barth", "tiny", 3)
        deaths0 = cluster.telemetry.counter("router.worker_deaths").value
        restarts0 = cluster.telemetry.counter("router.restarts").value
        cluster.arm_chaos(
            victim, "cluster.worker.request", exit_code=42, times=1
        )
        resp = cluster.layout({"graph": "barth", "scale": "tiny", "s": 6,
                               "seed": 3})
        # The request survived the crash: retried on the ring successor.
        assert resp["status"] == "computed"
        assert resp.get("resharded") is True
        assert (
            cluster.telemetry.counter("router.worker_deaths").value
            == deaths0 + 1
        )
        # The monitor respawns the dead worker and re-adds it to the ring.
        _wait_workers(cluster, 2)
        deadline = time.monotonic() + 30
        while (
            cluster.telemetry.counter("router.restarts").value <= restarts0
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        assert (
            cluster.telemetry.counter("router.restarts").value == restarts0 + 1
        )
        stats = cluster.stats()
        assert stats["workers"][str(victim)]["generation"] >= 1
        assert stats["workers"][str(victim)]["state"] == "up"
        # And the reborn shard serves again (cold cache, pristine graph).
        again = cluster.layout({"graph": "barth", "scale": "tiny", "s": 6,
                                "seed": 3})
        assert again["fingerprint"] == resp["fingerprint"]


class TestClusterHTTP:
    @pytest.fixture(scope="class")
    def server(self, cluster):
        srv = make_cluster_server(cluster, port=0).start()
        yield srv
        srv.shutdown()

    def _post(self, url, body, route="/layout"):
        req = urllib.request.Request(
            url + route,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz", timeout=10) as r:
            assert json.loads(r.read()) == {"status": "ok", "workers": 2}

    def test_layout_and_update_roundtrip(self, server):
        status, cold = self._post(
            server.url, {"graph": "barth", **TINY, "include_coords": False}
        )
        assert status == 200 and "coords" not in cold
        status, up = self._post(
            server.url,
            {"graph": "barth", "scale": "tiny", "inserts": [[0, 5]]},
            route="/update",
        )
        assert status == 200 and up["epoch"] >= 1

    def test_bad_request_maps_to_400(self, server):
        status, err = self._post(server.url, {"graph": "no-such-graph"})
        assert status == 400 and err["error"] == "bad_request"

    def test_unknown_route_404(self, server):
        status, err = self._post(server.url, {}, route="/nope")
        assert status == 404 and err["error"] == "not_found"

    def test_stats_pages(self, server):
        with urllib.request.urlopen(server.url + "/stats", timeout=10) as r:
            stats = json.loads(r.read())
        assert stats["mode"] == "cluster" and "aggregate" in stats
        url = server.url + "/stats?format=text"
        with urllib.request.urlopen(url, timeout=10) as r:
            text = r.read().decode()
        assert "# counters" in text and "ring" in text


class TestDrainAndLifecycle:
    def test_drain_refuses_new_work_and_close_is_idempotent(self):
        router = ClusterRouter(
            1, compute_threads=1, cache_mb=16.0, heartbeat_interval=0.2
        ).start()
        try:
            router.layout({"graph": "barth", **TINY})
            assert router.drain(10.0) is True
            assert router.healthz()["status"] == "draining"
            with pytest.raises(Overloaded):
                router.layout({"graph": "barth", **TINY})
        finally:
            router.close()
            router.close()  # second close is a no-op

    def test_all_workers_down_raises_unavailable(self):
        router = ClusterRouter(
            1,
            compute_threads=1,
            cache_mb=16.0,
            heartbeat_interval=0.2,
            breaker_threshold=2,
            restart=False,  # observe the degraded ring, no respawn
        ).start()
        try:
            router.arm_chaos(0, "cluster.worker.request", exit_code=9)
            with pytest.raises(WorkerUnavailable):
                router.layout({"graph": "barth", **TINY})
            deadline = time.monotonic() + 10
            while router.alive_workers and time.monotonic() < deadline:
                time.sleep(0.1)
            assert router.healthz() == {"status": "down", "workers": 0}
            with pytest.raises(WorkerUnavailable):
                router.layout({"graph": "barth", **TINY})
        finally:
            router.close()


# ---------------------------------------------------------------------------
# live LPT placement
# ---------------------------------------------------------------------------


class TestLivePlacement:
    def test_sticky_assignment(self):
        lp = LivePlacement()
        lp.add_worker(0)
        lp.add_worker(1)
        first = lp.assign("g1", live=[0, 1])
        for _ in range(5):
            assert lp.assign("g1", live=[0, 1]) == first

    def test_cold_table_balances_by_count(self):
        lp = LivePlacement()
        owners = [lp.assign(f"g{i}", live=[0, 1, 2]) for i in range(9)]
        counts = {w: owners.count(w) for w in (0, 1, 2)}
        assert all(c == 3 for c in counts.values())

    def test_observe_steers_new_keys_away_from_hot_worker(self):
        lp = LivePlacement()
        a = lp.assign("hot", live=[0, 1])
        lp.observe("hot", 100.0)  # this key turned out to be expensive
        b = lp.assign("cold", live=[0, 1])
        assert b != a
        snap = lp.snapshot()
        assert snap["policy"] == "lpt"
        assert snap["load"][str(a)] > snap["load"][str(b)]

    def test_evict_reassigns_heaviest_first(self):
        lp = LivePlacement()
        for key, cost in (("big", 8.0), ("mid", 4.0), ("small", 1.0)):
            assert lp.assign(key, live=[0]) == 0
            lp.observe(key, cost)
        lp.add_worker(1)
        lp.add_worker(2)
        moved = lp.evict_worker(0, live=[0, 1, 2])
        assert set(moved) == {"big", "mid", "small"}
        # LPT: big and mid land on different survivors; small joins mid.
        assert moved["big"] != moved["mid"]
        for key, target in moved.items():
            assert lp.peek(key) == target
        assert lp.snapshot()["load"].get("0") is None

    def test_no_live_workers_raises(self):
        lp = LivePlacement()
        with pytest.raises(LookupError):
            lp.assign("g", live=[])

    def test_stale_sticky_entry_replaced(self):
        lp = LivePlacement()
        assert lp.assign("g", live=[0]) == 0
        # Worker 0 vanished without an evict (race): assign must re-place.
        assert lp.assign("g", live=[1, 2]) in (1, 2)


# ---------------------------------------------------------------------------
# progressive LOD + LPT over the live cluster
# ---------------------------------------------------------------------------

_LOD_OPTS = {"min_vertices": 1, "coarsest_size": 64, "refine_sweeps": 1}


@pytest.fixture(scope="module")
def lod_cluster():
    router = ClusterRouter(
        2,
        compute_threads=2,
        timeout=60.0,
        cache_mb=32.0,
        heartbeat_interval=0.2,
        placement="lpt",
        lod_opts=_LOD_OPTS,
    ).start()
    yield router
    router.close()


def _poll_to_full(router, body, budget=30.0):
    tiers = []
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        resp = router.layout(body)
        if not tiers or resp["quality_tier"] != tiers[-1]:
            tiers.append(resp["quality_tier"])
        if resp["quality_tier"] == "full":
            return tiers, resp
        time.sleep(0.05)
    raise AssertionError(f"never converged to full; saw {tiers}")


class TestLodCluster:
    def test_first_paint_then_monotone_convergence(self, lod_cluster):
        body = {"graph": "barth", **TINY, "lod": "auto",
                "include_coords": False}
        first = lod_cluster.layout(body)
        assert first["status"] == "computed"
        assert is_lod_tier(first["quality_tier"])
        tiers, final = _poll_to_full(lod_cluster, body)
        ranks = [tier_rank(t) for t in [first["quality_tier"]] + tiers]
        assert ranks == sorted(ranks, reverse=True)
        assert final["quality_tier"] == "full"

    def test_tier_parity_with_in_process_engine(self, lod_cluster):
        """Satellite: quality_tier must be identical between --workers N
        and in-process serving for the same request and LOD config."""
        from repro.lod import LodConfig, ProgressiveEngine
        from repro.service import LayoutEngine, LayoutRequest

        body = {"graph": "web", **TINY, "lod": "auto",
                "include_coords": False}
        cluster_first = lod_cluster.layout(body)["quality_tier"]
        eng = ProgressiveEngine(
            LayoutEngine(workers=2), config=LodConfig(**_LOD_OPTS)
        )
        try:
            local = eng.submit(
                LayoutRequest(graph="web", scale="tiny", s=6, lod="auto")
            )
            assert local.result.quality_tier == cluster_first
        finally:
            eng.close()

    def test_every_response_carries_quality_tier(self, lod_cluster):
        body = {"graph": "barth", **TINY, "include_coords": False}
        resp = lod_cluster.layout(body)
        assert resp["quality_tier"] == "full"

    def test_coalesced_followers_get_leaders_tier(self, lod_cluster):
        body = {"graph": "ecology", **TINY, "lod": "auto",
                "include_coords": False}
        owner = lod_cluster.owner_of("ecology", "tiny", 0)
        lod_cluster.arm_chaos(
            owner, "cluster.worker.request", sleep=0.5, times=1
        )
        results: list[dict] = []

        def _one():
            results.append(lod_cluster.layout(dict(body)))

        threads = [threading.Thread(target=_one) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert len(results) == 4
        statuses = sorted(r["status"] for r in results)
        assert statuses.count("coalesced") >= 1
        # Followers relay the leader's payload verbatim (bar status):
        # same fingerprint, same quality_tier.
        assert len({r["fingerprint"] for r in results}) == 1
        assert len({r["quality_tier"] for r in results}) == 1
        _poll_to_full(lod_cluster, body)

    def test_lod_mode_splits_coalescing_flights(self, lod_cluster):
        on = {"graph": "barth", **TINY, "lod": "auto"}
        off = {"graph": "barth", **TINY}
        assert (
            ClusterRouter._coalesce_key(on)
            != ClusterRouter._coalesce_key(off)
        )

    def test_placement_stats_and_affinity(self, lod_cluster):
        lod_cluster.layout(
            {"graph": "barth", **TINY, "include_coords": False}
        )
        stats = lod_cluster.stats()
        assert stats["placement"]["policy"] == "lpt"
        assert stats["placement"]["keys"] >= 1
        assert set(stats["placement"]["load"]) == {"0", "1"}
        # Sticky affinity: the owner never changes between requests.
        owner = lod_cluster.owner_of("barth", "tiny", 0)
        for _ in range(3):
            lod_cluster.layout(
                {"graph": "barth", **TINY, "include_coords": False}
            )
            assert lod_cluster.owner_of("barth", "tiny", 0) == owner

    def test_get_layout_polling_route(self, lod_cluster):
        srv = make_cluster_server(lod_cluster, port=0).start()
        try:
            url = (
                srv.url + "/layout?graph=barth&scale=tiny&s=6&lod=auto"
                "&include_coords=false"
            )
            with urllib.request.urlopen(url, timeout=60) as r:
                payload = json.loads(r.read())
            assert "quality_tier" in payload and "coords" not in payload
            bad = srv.url + "/layout?graph=barth&bogus=1"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(bad, timeout=30)
            assert err.value.code == 400
        finally:
            srv.shutdown()
