"""End-to-end integration tests across datasets and algorithms."""

import numpy as np
import pytest

from repro import datasets, parhde, phde, pivotmds
from repro.metrics import sampled_stress
from repro.parallel import BRIDGES_RSM


@pytest.mark.parametrize("name", datasets.available())
def test_parhde_runs_on_every_dataset(name):
    g = datasets.load(name, scale="tiny")
    res = parhde(g, s=min(8, g.n - 1), seed=0)
    assert res.coords.shape == (g.n, 2)
    assert np.all(np.isfinite(res.coords))
    assert len(res.ledger) > 0
    t1 = res.simulated_seconds(BRIDGES_RSM, 1)
    t28 = res.simulated_seconds(BRIDGES_RSM, 28)
    assert 0 < t28 <= t1 * 1.0001


@pytest.mark.parametrize("algo", [parhde, phde, pivotmds])
def test_all_algorithms_beat_random_layout(algo):
    g = datasets.load("barth", scale="tiny")
    res = algo(g, s=10, seed=0)
    rng = np.random.default_rng(7)
    rand_coords = rng.standard_normal((g.n, 2))
    assert sampled_stress(g, res.coords, seed=1) < sampled_stress(
        g, rand_coords, seed=1
    )


def test_weighted_end_to_end():
    from repro.graph import random_integer_weights

    g = datasets.load("road", scale="tiny")
    gw = random_integer_weights(g, 1, 32, seed=0)
    res = parhde(gw, s=6, seed=0, weighted=True)
    assert np.all(np.isfinite(res.coords))
    ph = res.phase_seconds(BRIDGES_RSM, 28)
    assert ph["BFS"] > 0


def test_layout_then_zoom_then_draw(tmp_path):
    from repro import zoom_layout
    from repro.drawing import read_png, save_drawing

    g = datasets.load("barth", scale="tiny")
    res = parhde(g, s=10, seed=0)
    save_drawing(g, res.coords, tmp_path / "global.png", width=100, height=100)
    z = zoom_layout(g, center=int(g.n // 2), hops=6, s=8, seed=0)
    save_drawing(
        z.subgraph, z.layout.coords, tmp_path / "zoom.png", width=100, height=100
    )
    assert read_png(tmp_path / "global.png").shape == (100, 100, 3)
    assert read_png(tmp_path / "zoom.png").shape == (100, 100, 3)


def test_partition_visualization_pipeline(tmp_path):
    """Section 4.5.4: color intra/inter-partition edges on the layout."""
    from repro.drawing import partition_edge_colors, render_layout

    g = datasets.load("ecology", scale="tiny")
    res = parhde(g, s=8, seed=0)
    parts = (res.coords[:, 0] > np.median(res.coords[:, 0])).astype(np.int64)
    u, v = g.edge_list()
    colors = partition_edge_colors(u, v, parts)
    canvas = render_layout(
        g, res.coords, width=100, height=100, edge_colors=colors
    )
    assert canvas.ink_fraction() > 0.01


def test_simulation_consistency_across_machines():
    from repro.parallel import BRIDGES_ESM, LAPTOP

    g = datasets.load("kron", scale="tiny")
    res = parhde(g, s=6, seed=0)
    for machine in (BRIDGES_RSM, BRIDGES_ESM, LAPTOP):
        t = res.simulated_seconds(machine, machine.cores)
        assert np.isfinite(t) and t > 0


def test_full_pipeline_reuses_distance_matrix():
    """B, S and the eigensolve stay mutually consistent."""
    g = datasets.load("pa", scale="tiny")
    res = parhde(g, s=8, seed=0)
    d = g.weighted_degrees
    # coords = S @ Y where Y are eigenvectors of S'LS: verify residual.
    from repro.linalg import laplacian_spmm

    Z = res.S.T @ laplacian_spmm(g, res.S)
    for k in range(2):
        y = np.linalg.lstsq(res.S, res.coords[:, k], rcond=None)[0]
        r = Z @ y - res.eigenvalues[k] * y
        assert np.abs(r).max() < 1e-6
