"""Tests for the Jacobi eigensolver and the power iteration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import cycle_graph, grid2d
from repro.linalg import (
    extreme_eigenpairs,
    jacobi_eigh,
    power_iteration,
    walk_spmm,
)


class TestJacobi:
    def test_diagonal_matrix(self):
        evals, evecs = jacobi_eigh(np.diag([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(evals, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(np.abs(evecs), np.eye(3)[:, [1, 2, 0]])

    def test_1x1(self):
        evals, evecs = jacobi_eigh(np.array([[4.0]]))
        assert evals[0] == 4.0

    def test_matches_numpy(self, rng):
        M = rng.standard_normal((12, 12))
        M = (M + M.T) / 2
        evals, evecs = jacobi_eigh(M)
        ref = np.linalg.eigvalsh(M)
        np.testing.assert_allclose(evals, ref, atol=1e-9)
        # Each column is an eigenvector: ||Mv - lambda v|| small.
        for k in range(12):
            np.testing.assert_allclose(
                M @ evecs[:, k], evals[k] * evecs[:, k], atol=1e-6
            )

    def test_orthonormal_eigenvectors(self, rng):
        M = rng.standard_normal((8, 8))
        M = M + M.T
        _, V = jacobi_eigh(M)
        np.testing.assert_allclose(V.T @ V, np.eye(8), atol=1e-9)

    def test_rejects_nonsymmetric(self, rng):
        with pytest.raises(ValueError, match="symmetric"):
            jacobi_eigh(rng.standard_normal((4, 4)) + 10 * np.eye(4) + np.triu(np.ones((4, 4)), 1))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            jacobi_eigh(np.ones((2, 3)))

    def test_extreme_eigenpairs(self, rng):
        M = rng.standard_normal((9, 9))
        M = M + M.T
        ref = np.linalg.eigvalsh(M)
        small, _ = extreme_eigenpairs(M, 2, "smallest")
        large, _ = extreme_eigenpairs(M, 2, "largest")
        np.testing.assert_allclose(small, ref[:2], atol=1e-9)
        np.testing.assert_allclose(large, ref[::-1][:2], atol=1e-9)

    def test_extreme_validation(self):
        M = np.eye(3)
        with pytest.raises(ValueError):
            extreme_eigenpairs(M, 0)
        with pytest.raises(ValueError):
            extreme_eigenpairs(M, 5)
        with pytest.raises(ValueError):
            extreme_eigenpairs(M, 1, "middle")


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 15), seed=st.integers(0, 9999))
def test_jacobi_property(n, seed):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    M = (M + M.T) / 2
    evals, V = jacobi_eigh(M)
    np.testing.assert_allclose(evals, np.linalg.eigvalsh(M), atol=1e-7)
    np.testing.assert_allclose(V @ np.diag(evals) @ V.T, M, atol=1e-6)


class TestPowerIteration:
    def test_cycle_graph_eigenvalues(self):
        # Walk-matrix eigenvalues of C_n are cos(2 pi k / n).
        g = cycle_graph(12)
        res = power_iteration(g, 2, tol=1e-12, seed=0)
        expected = np.cos(2 * np.pi / 12)
        np.testing.assert_allclose(res.eigenvalues, expected, atol=1e-6)

    def test_matches_dense_eigensolver(self, small_grid):
        g = small_grid
        res = power_iteration(g, 2, tol=1e-11, max_iter=50_000, seed=1)
        # Dense reference: generalized problem L u = mu D u via D^{-1}A.
        A = np.zeros((g.n, g.n))
        for v in range(g.n):
            A[v, g.neighbors(v)] = 1.0
        W = A / A.sum(axis=1, keepdims=True)
        ref = np.sort(np.linalg.eigvals(W).real)[::-1]
        np.testing.assert_allclose(
            np.sort(res.eigenvalues)[::-1], ref[1:3], atol=1e-5
        )

    def test_d_orthonormal_output(self, small_random):
        res = power_iteration(small_random, 2, tol=1e-9, seed=0)
        d = small_random.weighted_degrees
        G = res.vectors.T @ (d[:, None] * res.vectors)
        np.testing.assert_allclose(G, np.eye(2), atol=1e-6)
        np.testing.assert_allclose(res.vectors.T @ d, 0.0, atol=1e-6)

    def test_residual_is_eigen_residual(self, small_grid):
        res = power_iteration(small_grid, 1, tol=1e-12, max_iter=50_000, seed=0)
        x = res.vectors[:, 0]
        lam = res.eigenvalues[0]
        r = walk_spmm(small_grid, x) - lam * x
        assert np.abs(r).max() < 1e-4

    def test_warm_start_converges_faster(self):
        # Dumbbell: two cliques joined by an edge — a well separated
        # spectral gap, so convergence speed reflects the start vector.
        import numpy as np

        from repro.graph import from_edges

        k = 10
        u1, v1 = np.triu_indices(k, 1)
        edges_u = np.concatenate([u1, u1 + k, [0]])
        edges_v = np.concatenate([v1, v1 + k, [k]])
        g = from_edges(2 * k, edges_u, edges_v)
        cold = power_iteration(g, 2, tol=1e-10, max_iter=5000, seed=3)
        warm = power_iteration(
            g, 2, tol=1e-10, max_iter=5000, seed=3, x0=cold.vectors.copy()
        )
        # Restarting from the converged answer must be near-instant.
        assert warm.total_iterations < max(10, cold.total_iterations / 3)

    def test_invalid_args(self, small_grid):
        with pytest.raises(ValueError):
            power_iteration(small_grid, 0)
        with pytest.raises(ValueError):
            power_iteration(small_grid, 2, x0=np.ones((3, 2)))
