"""Deeper coverage of internals: caches, cost plumbing, corner cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs.runner import _SubLedger
from repro.graph import CSRGraph, from_edges, grid2d
from repro.parallel import BRIDGES_RSM, KernelCost, Ledger


class TestCSRCaching:
    def test_degree_cache_reused(self, small_grid):
        a = small_grid.degrees
        b = small_grid.degrees
        assert a is b  # cached object identity

    def test_weighted_degree_cache(self, small_grid):
        a = small_grid.weighted_degrees
        assert small_grid.weighted_degrees is a

    def test_with_weights_does_not_share_cache(self, small_grid):
        _ = small_grid.weighted_degrees
        gw = small_grid.with_weights(np.full(small_grid.nnz, 2.0))
        np.testing.assert_allclose(
            gw.weighted_degrees, 2.0 * small_grid.degrees
        )

    def test_miss_rate_cached_on_graph(self, small_grid):
        from repro.bfs import bfs_distances

        bfs_distances(small_grid, 0)
        assert "miss_rate" in small_grid._cache


class TestSubLedger:
    def test_forces_subphase(self):
        led = Ledger()
        sub = _SubLedger(led, "traversal")
        with led.phase("BFS"):
            sub.add(KernelCost(work=5), subphase="ignored")
        subs = led.subphase_totals("BFS")
        assert list(subs) == ["traversal"]
        assert subs["traversal"].parallel.work == 5

    def test_passes_sequential_flag(self):
        led = Ledger()
        sub = _SubLedger(led, "x")
        with led.phase("P"):
            sub.add(KernelCost(work=2), sequential=True)
        assert led.total().sequential.work == 2

    def test_exposes_current_phase(self):
        led = Ledger()
        sub = _SubLedger(led, "x")
        with led.phase("Zed"):
            assert sub.current_phase == "Zed"


class TestLedgerSubphaseEdge:
    def test_unlabeled_records_grouped_as_main(self):
        led = Ledger()
        with led.phase("P"):
            led.add(KernelCost(work=1))
            led.add(KernelCost(work=2), subphase="s")
        subs = led.subphase_totals("P")
        assert subs["(main)"].parallel.work == 1
        assert subs["s"].parallel.work == 2

    def test_subphase_totals_missing_phase(self):
        assert Ledger().subphase_totals("nope") == {}


@settings(max_examples=40, deadline=None)
@given(
    work=st.floats(0, 1e10),
    flops=st.floats(0, 1e10),
    streamed=st.floats(0, 1e10),
    lines=st.floats(0, 1e8),
    regions=st.integers(0, 100),
    p1=st.integers(1, 28),
    p2=st.integers(1, 28),
)
def test_machine_body_monotone_property(
    work, flops, streamed, lines, regions, p1, p2
):
    """Property: without barriers, more threads never hurt."""
    cost = KernelCost(
        work=work, flops=flops, bytes_streamed=streamed, random_lines=lines
    )
    lo, hi = sorted((p1, p2))
    assert BRIDGES_RSM.time(cost, hi) <= BRIDGES_RSM.time(cost, lo) * 1.000001


class TestZoomEdgeCases:
    def test_zoom_whole_graph(self, small_grid):
        from repro.core import zoom_layout

        z = zoom_layout(small_grid, center=0, hops=10_000, s=6, seed=0)
        assert z.subgraph.n == small_grid.n

    def test_khop_isolated_center(self):
        from repro.core.zoom import khop_vertices

        g = from_edges(3, [1], [2])
        np.testing.assert_array_equal(khop_vertices(g, 0, 5), [0])


class TestResultHelpers:
    def test_xy_properties(self, tiny_mesh):
        from repro import parhde

        res = parhde(tiny_mesh, s=6, seed=0)
        np.testing.assert_array_equal(res.x, res.coords[:, 0])
        np.testing.assert_array_equal(res.y, res.coords[:, 1])
        assert res.n == tiny_mesh.n

    def test_breakdown_object(self, tiny_mesh):
        from repro import parhde

        res = parhde(tiny_mesh, s=6, seed=0)
        bd = res.breakdown(BRIDGES_RSM, 14)
        assert bd.threads == 14
        assert bd.total == pytest.approx(sum(bd.seconds.values()))


class TestDatasetsSmallScale:
    @pytest.mark.parametrize("name", ["urand", "road", "barth"])
    def test_small_scale_loads(self, name):
        from repro import datasets
        from repro.graph import is_connected

        g = datasets.load(name, scale="small")
        assert is_connected(g)
        assert g.n > datasets.load(name, scale="tiny").n


class TestFrontierEdgeCases:
    def test_gather_duplicate_vertices(self, small_grid):
        from repro.bfs import gather_neighbors

        nbrs, counts, starts = gather_neighbors(
            small_grid, np.array([3, 3], dtype=np.int64)
        )
        assert counts[0] == counts[1] == small_grid.degree(3)
        np.testing.assert_array_equal(
            nbrs[: counts[0]], nbrs[counts[0] :]
        )

    def test_empty_bitmap_conversions(self):
        from repro.bfs import bitmap_to_queue, queue_to_bitmap

        bm = queue_to_bitmap(np.array([], dtype=np.int64), 5)
        assert not bm.any()
        assert len(bitmap_to_queue(bm)) == 0


class TestPriorPeakBytes:
    def test_scaling_in_s(self, small_grid):
        from repro.baselines import parhde_peak_bytes, prior_peak_bytes

        assert prior_peak_bytes(small_grid, 50) > prior_peak_bytes(
            small_grid, 10
        )
        assert parhde_peak_bytes(small_grid, 50) > parhde_peak_bytes(
            small_grid, 10
        )
        # The gap is the materialized Laplacian: independent of s.
        gap50 = prior_peak_bytes(small_grid, 50) - parhde_peak_bytes(
            small_grid, 50
        )
        gap10 = prior_peak_bytes(small_grid, 10) - parhde_peak_bytes(
            small_grid, 10
        )
        assert gap50 == pytest.approx(gap10)
