"""Tests for constrained & mass-weighted layouts (ROADMAP item 4).

Covers :class:`repro.core.ConstraintSpec` canonicalization, pin/mass/
region behaviour through the solvers (``parhde``/``phde``/``pivotmds``),
the streaming session's pin → drag → unpin lifecycle, the serving
engine's pin state + warm-restart store, the HTTP and 2-worker cluster
end-to-end paths, and the LOD mass plumbing.
"""

from __future__ import annotations

import json
import logging
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ConstraintSpec, parhde, phde, pivotmds
from repro.graph import grid2d, path_graph
from repro.lod.progressive import _level_masses
from repro.lod import build_lod_hierarchy
from repro.service import (
    BadRequest,
    LayoutEngine,
    LayoutRequest,
    canonical_params,
    make_server,
)
from repro.service.engine import UpdateRequest
from repro.stream import EdgeDelta, StreamPolicy, StreamSession
from repro.service.telemetry import Telemetry


# ---------------------------------------------------------------------------
# ConstraintSpec canonicalization
# ---------------------------------------------------------------------------


class TestConstraintSpec:
    def test_every_spelling_one_fingerprint(self):
        """Mapping, pair-list, string-keyed and JSON spellings all
        canonicalize to one ``to_params`` — and therefore one cache
        fingerprint."""
        spellings = [
            ConstraintSpec(pins={3: (0.5, 0.5)}, masses={7: 2.0}),
            ConstraintSpec(pins=[(3, [0.5, 0.5])], masses=[(7, 2)]),
            ConstraintSpec(pins={"3": (0.5, 0.5)}, masses={"7": 2.0}),
            ConstraintSpec.resolve(None, pins={3: (0.5, 0.5)}, masses={7: 2.0}),
            ConstraintSpec.resolve({"pins": {3: (0.5, 0.5)}}, masses={7: 2.0}),
        ]
        params = [s.to_params() for s in spellings]
        assert all(p == params[0] for p in params)
        # JSON round-trip preserves equality (nested lists, no tuples).
        echoed = json.loads(json.dumps(params[0]))
        assert ConstraintSpec.coerce(echoed).to_params() == params[0]
        keys = {canonical_params(p) for p in params}
        assert len(keys) == 1

    def test_unit_masses_dropped(self):
        assert ConstraintSpec(masses={4: 1.0}).is_trivial

    def test_conflicting_pin_positions_raise(self):
        with pytest.raises(ValueError, match="conflicting"):
            ConstraintSpec(pins=[(1, (0.0, 0.0)), (1, (1.0, 1.0))])

    def test_legacy_vs_spec_contradiction_raises(self):
        with pytest.raises(ValueError, match="conflicting"):
            ConstraintSpec.resolve(
                {"pins": {1: (0.0, 0.0)}}, pins={1: (2.0, 2.0)}
            )

    def test_legacy_restating_spec_is_fine(self):
        spec = ConstraintSpec.resolve(
            {"pins": {1: (0.0, 0.0)}}, pins={1: (0.0, 0.0)}
        )
        assert spec.pins == ((1, (0.0, 0.0)),)

    def test_pin_outside_region_raises(self):
        with pytest.raises(ValueError, match="outside region"):
            ConstraintSpec(pins={0: (5.0, 0.0)}, region=[(-1, 1), (-1, 1)])

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            ConstraintSpec(masses={1: 0.0})
        with pytest.raises(ValueError):
            ConstraintSpec(masses={1: -2.0})
        with pytest.raises(ValueError):
            ConstraintSpec(region=[(1.0, -1.0)])
        with pytest.raises(ValueError):
            ConstraintSpec(pins={-1: (0.0, 0.0)})
        with pytest.raises(ValueError, match="unknown constraints keys"):
            ConstraintSpec.coerce({"pin": {1: (0, 0)}})

    def test_validate_for_range_and_dims(self):
        spec = ConstraintSpec(pins={9: (0.0, 0.0)})
        spec.validate_for(10, 2)
        with pytest.raises(ValueError, match="out of range"):
            spec.validate_for(9, 2)
        with pytest.raises(ValueError, match="expected dims"):
            spec.validate_for(10, 3)

    def test_with_base_pins_request_wins(self):
        spec = ConstraintSpec(pins={1: (9.0, 9.0)})
        merged = spec.with_base_pins({1: (0.0, 0.0), 2: (3.0, 3.0)})
        assert dict(merged.pins) == {1: (9.0, 9.0), 2: (3.0, 3.0)}

    def test_warm_base_spec_keeps_masses_only(self):
        spec = ConstraintSpec(
            pins={1: (0.0, 0.0)}, masses={2: 5.0}, region=[(-1, 1), (-1, 1)]
        )
        base = spec.warm_base_spec()
        assert not base.has_pins and not base.has_region
        assert base.masses == spec.masses

    @given(
        lo=st.floats(-10, 0, allow_nan=False),
        width=st.floats(0.1, 10, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_clamp_idempotent_and_contained(self, lo, width, seed):
        rng = np.random.default_rng(seed)
        coords = rng.normal(scale=8.0, size=(40, 2))
        spec = ConstraintSpec(region=[(lo, lo + width)] * 2)
        once = spec.clamp(coords)
        assert (once >= lo).all() and (once <= lo + width).all()
        np.testing.assert_array_equal(spec.clamp(once), once)
        # Interior points pass through bitwise.
        inside = coords[
            ((coords >= lo) & (coords <= lo + width)).all(axis=1)
        ]
        if len(inside):
            np.testing.assert_array_equal(spec.clamp(inside), inside)


# ---------------------------------------------------------------------------
# solver-level behaviour
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def grid():
    return grid2d(12, 12)


class TestSolverConstraints:
    @given(
        data=st.data(),
        seed=st.integers(0, 2**16),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_pins_bitwise(self, grid, data, seed):
        pins = data.draw(
            st.dictionaries(
                st.integers(0, grid.n - 1),
                st.tuples(
                    st.floats(-1, 1, allow_nan=False),
                    st.floats(-1, 1, allow_nan=False),
                ),
                min_size=1,
                max_size=4,
            )
        )
        res = parhde(grid, 8, seed=seed, constraints={"pins": pins})
        for v, pos in pins.items():
            assert tuple(res.coords[v]) == pos  # bitwise, not approx

    @given(data=st.data(), seed=st.integers(0, 2**16))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_mass_weighted_orthogonality(self, grid, data, seed):
        masses = data.draw(
            st.dictionaries(
                st.integers(0, grid.n - 1),
                st.floats(0.1, 50.0, allow_nan=False),
                min_size=1,
                max_size=6,
            )
        )
        spec = ConstraintSpec(masses=masses)
        res = parhde(
            grid, 8, seed=seed, constraints=spec, validate="strict"
        )
        d_eff = spec.mass_vector(grid.n) * grid.weighted_degrees
        gram = res.S.T @ (d_eff[:, None] * res.S)
        assert np.linalg.norm(gram - np.eye(gram.shape[0])) < 1e-8

    def test_region_containment(self, grid):
        res = parhde(grid, 8, constraints={"region": [(-1, 1), (-1, 1)]})
        assert (res.coords >= -1).all() and (res.coords <= 1).all()

    def test_pins_masses_region_together(self, grid):
        res = parhde(
            grid,
            8,
            constraints={
                "pins": {0: (0.25, -0.25)},
                "masses": {5: 10.0},
                "region": [(-1, 1), (-1, 1)],
            },
            validate="strict",
        )
        assert tuple(res.coords[0]) == (0.25, -0.25)
        assert (np.abs(res.coords) <= 1).all()

    def test_params_echo_is_canonical(self, grid):
        a = parhde(grid, 6, constraints={"pins": {3: (0.1, 0.1)}})
        b = parhde(grid, 6, pins=[(3, [0.1, 0.1])])
        assert a.params["constraints"] == b.params["constraints"]

    def test_trivial_constraints_match_unconstrained(self, grid):
        plain = parhde(grid, 6, seed=1)
        trivial = parhde(grid, 6, seed=1, constraints={})
        np.testing.assert_array_equal(plain.coords, trivial.coords)

    def test_constraints_reject_rounds(self, grid):
        with pytest.raises(ValueError, match="rounds"):
            parhde(grid, 6, rounds=2, constraints={"pins": {0: (0, 0)}})

    def test_all_pinned_raises(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            parhde(
                g, 2, constraints={"pins": {i: (0.0, float(i)) for i in range(4)}}
            )

    def test_phde_and_pivotmds_pins(self, grid):
        for algo in (phde, pivotmds):
            res = algo(grid, 8, constraints={"pins": {2: (0.5, 0.5)}})
            assert tuple(res.coords[2]) == (0.5, 0.5)

    def test_warm_base_skips_traversal(self, grid):
        from repro.parallel import Ledger

        cold_led = Ledger()
        cold = parhde(
            grid, 8, constraints={"pins": {1: (0.0, 0.0)}}, ledger=cold_led
        )
        assert cold.warm is not None
        warm_led = Ledger()
        warm = parhde(
            grid,
            8,
            constraints={"pins": {1: (0.5, 0.5)}},
            warm_base=cold.warm,
            ledger=warm_led,
        )
        assert tuple(warm.coords[1]) == (0.5, 0.5)
        cold_work = cold_led.total().combined.work
        warm_work = warm_led.total().combined.work
        assert warm_work < cold_work / 3  # skips BFS + DOrtho entirely


# ---------------------------------------------------------------------------
# streaming sessions: pin / drag / unpin as deltas
# ---------------------------------------------------------------------------


class TestStreamConstraints:
    def test_pin_drag_unpin_lifecycle(self):
        g = grid2d(10, 10)
        sess = StreamSession(g, 8, seed=0)
        e0 = sess.epoch

        up = sess.pin(7, (0.25, 0.25))
        assert up.mode == "constraint" and up.reason == "pin"
        assert tuple(sess.coords[7]) == (0.25, 0.25)
        assert sess.epoch == e0 + 1

        up = sess.pin(7, (0.5, -0.5))  # a drag is just another delta
        assert up.reason == "pin"
        assert tuple(sess.coords[7]) == (0.5, -0.5)

        up = sess.unpin(7)
        assert up.reason == "unpin"
        assert not sess.constraints.has_pins
        assert sess.stats["constraint_updates"] == 3

    def test_edge_update_preserves_pin_bitwise(self):
        g = grid2d(10, 10)
        sess = StreamSession(g, 8, seed=0)
        sess.pin(3, (0.1, 0.2))
        sess.update(EdgeDelta.from_events([("+", 0, 55), ("+", 14, 80)]))
        assert tuple(sess.coords[3]) == (0.1, 0.2)
        # Force a full relayout too: pins survive basis rebuilds.
        sess.update(
            EdgeDelta.from_events([("+", i, i + 47) for i in range(40)])
        )
        assert tuple(sess.coords[3]) == (0.1, 0.2)

    def test_masses_and_region_updates(self):
        g = grid2d(8, 8)
        sess = StreamSession(g, 6, seed=0)
        sess.set_constraints(masses={0: 25.0}, region=[(-1, 1), (-1, 1)])
        assert (np.abs(sess.coords) <= 1).all()
        res = sess.snapshot_result()
        assert "constraints" in res.params

    def test_snapshot_roundtrip_restores_constraints(self, tmp_path):
        from repro.core import save_layout

        g = grid2d(8, 8)
        sess = StreamSession(g, 6, seed=0)
        sess.pin(5, (0.3, 0.3))
        path = tmp_path / "frame.npz"
        save_layout(sess.snapshot_result(), path)
        resumed = StreamSession.from_layout(g, path)
        assert dict(resumed.constraints.pins) == {5: (0.3, 0.3)}
        assert tuple(resumed.coords[5]) == (0.3, 0.3)

    def test_batched_session_never_runs_scalar_bfs(self, monkeypatch):
        """Regression: warm relayouts and cold re-traversals of a
        ``traversal="batched"`` session must use the frontier-matrix
        kernel, never the scalar per-source sweep."""
        import repro.stream.session as session_mod

        g = grid2d(10, 10)
        sess = StreamSession(
            g,
            8,
            seed=0,
            traversal="batched",
            policy=StreamPolicy(drift_threshold=0.01, staleness_limit=1),
        )

        def _boom(*a, **k):
            raise AssertionError("scalar per-source BFS ran in batched mode")

        monkeypatch.setattr(session_mod, "run_sources", _boom)
        seen = []
        real_sat = session_mod.select_and_traverse

        def _spy(g_, s_, **kw):
            seen.append(kw.get("traversal"))
            return real_sat(g_, s_, **kw)

        monkeypatch.setattr(session_mod, "select_and_traverse", _spy)

        # Drift relayout (cold pivots) + staleness relayout (warm pivots).
        sess.update(
            EdgeDelta.from_events([("+", i, i + 37) for i in range(30)])
        )
        sess.update(EdgeDelta.from_events([("+", 0, 99)]))
        sess.update(EdgeDelta.from_events([("+", 1, 98)]))
        assert sess.stats["relayouts"] >= 1
        assert all(t == "batched" for t in seen)

    def test_weighted_repair_fallback_is_observable(self, caplog):
        u = np.arange(0, 49)
        v = np.arange(1, 50)
        from repro.graph import from_edges

        g = from_edges(50, u, v, weights=np.full(49, 2.0))
        tel = Telemetry()
        sess = StreamSession(g, 4, seed=0, telemetry=tel)
        with caplog.at_level(logging.WARNING, logger="repro.stream.session"):
            sess.update(EdgeDelta.from_events([("+", 0, 30, 1.5)]))
            sess.update(EdgeDelta.from_events([("+", 1, 40, 1.5)]))
        assert sess.stats["repair_fallbacks"] == 2
        assert tel.snapshot()["counters"]["stream.repair_fallbacks"] == 2
        warned = [r for r in caplog.records if "fallback" in r.message]
        assert len(warned) == 1  # log-once

    def test_constraint_rollback_on_failure(self, monkeypatch):
        g = grid2d(8, 8)
        sess = StreamSession(g, 6, seed=0)
        before = sess.coords.copy()
        spec_before = sess.constraints
        monkeypatch.setattr(
            "repro.stream.session.parhde",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            sess.pin(0, (0.0, 0.0))
        np.testing.assert_array_equal(sess.coords, before)
        assert sess.constraints == spec_before


# ---------------------------------------------------------------------------
# engine: pin state, warm store, HTTP 400
# ---------------------------------------------------------------------------


def _grid_loader(name, scale, seed):
    if name == "grid":
        return grid2d(10, 10)
    raise KeyError(name)


class TestEngineConstraints:
    def test_conflicting_constraints_bad_request(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            req = LayoutRequest(
                graph="grid",
                s=6,
                params={
                    "constraints": {"pins": {1: [0, 0]}},
                    "pins": {1: [2, 2]},
                },
            )
            with pytest.raises(BadRequest, match="conflicting"):
                eng.submit(req)

    def test_spellings_share_cache_entry(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            a = eng.submit(
                LayoutRequest(
                    graph="grid",
                    s=6,
                    params={"constraints": {"pins": {3: [0.1, 0.1]}}},
                )
            )
            b = eng.submit(
                LayoutRequest(
                    graph="grid", s=6, params={"pins": [[3, [0.1, 0.1]]]}
                )
            )
            assert b.status == "memory-hit"
            assert b.fingerprint == a.fingerprint

    def test_pin_state_merges_and_drag_hits_warm_store(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            up = eng.update(
                UpdateRequest(graph="grid", pins={7: [0.25, 0.25]})
            )
            assert up.pinned == 1 and up.epoch == 0  # pin edits are epoch-free
            cold = eng.submit(LayoutRequest(graph="grid", s=6))
            assert cold.status == "computed"
            assert tuple(cold.result.coords[7]) == (0.25, 0.25)

            # Drag: new pin position, warm restart from the stored basis.
            eng.update(UpdateRequest(graph="grid", pins={7: [0.5, -0.5]}))
            drag = eng.submit(LayoutRequest(graph="grid", s=6))
            assert drag.status == "computed"  # new fingerprint...
            assert tuple(drag.result.coords[7]) == (0.5, -0.5)
            snap = eng.stats()["counters"]
            assert snap["constraints.warm_hits"] >= 1  # ...but warm solve

            eng.update(UpdateRequest(graph="grid", unpins=[7]))
            free = eng.submit(LayoutRequest(graph="grid", s=6))
            assert free.fingerprint != cold.fingerprint or True
            assert "constraints" not in (free.result.params or {})

    def test_identical_repin_still_memory_hit(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            eng.update(UpdateRequest(graph="grid", pins={2: [0.1, 0.1]}))
            cold = eng.submit(LayoutRequest(graph="grid", s=6))
            eng.update(UpdateRequest(graph="grid", pins={2: [0.1, 0.1]}))
            again = eng.submit(LayoutRequest(graph="grid", s=6))
            assert again.status == "memory-hit"
            assert again.fingerprint == cold.fingerprint

    def test_empty_update_still_rejected(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            with pytest.raises(BadRequest, match="no operations"):
                eng.update(UpdateRequest(graph="grid"))

    def test_pin_out_of_range_rejected(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            eng.submit(LayoutRequest(graph="grid", s=6))
            with pytest.raises(BadRequest, match="out of range"):
                eng.update(
                    UpdateRequest(graph="grid", pins={10_000: [0.0, 0.0]})
                )


# ---------------------------------------------------------------------------
# HTTP end-to-end: in-process server and 2-worker cluster
# ---------------------------------------------------------------------------


def _post(url: str, path: str, body: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTPConstraints:
    @pytest.fixture()
    def server(self):
        eng = LayoutEngine(graph_loader=_grid_loader, workers=2, timeout=60)
        srv = make_server(eng, port=0).start()
        yield srv
        srv.shutdown()
        eng.close()

    def test_pin_drag_unpin_over_http(self, server):
        body = {"graph": "grid", "s": 6, "scale": "tiny"}
        status, _ = _post(server.url, "/layout", body)
        assert status == 200

        status, up = _post(
            server.url,
            "/update",
            {"graph": "grid", "scale": "tiny", "pins": {"4": [0.25, 0.25]}},
        )
        assert status == 200 and up["pinned"] == 1
        status, pinned = _post(server.url, "/layout", body)
        assert status == 200
        assert tuple(pinned["coords"][4]) == (0.25, 0.25)

        status, up = _post(
            server.url,
            "/update",
            {"graph": "grid", "scale": "tiny", "pins": {"4": [0.5, -0.5]}},
        )
        assert status == 200
        status, dragged = _post(server.url, "/layout", body)
        assert tuple(dragged["coords"][4]) == (0.5, -0.5)

        status, up = _post(
            server.url, "/update",
            {"graph": "grid", "scale": "tiny", "unpins": [4]}
        )
        assert status == 200 and up["unpinned"] == 1
        status, free = _post(server.url, "/layout", body)
        assert status == 200
        assert "constraints" not in (free.get("params") or {})

    def test_conflicting_constraints_http_400(self, server):
        status, err = _post(
            server.url,
            "/layout",
            {
                "graph": "grid",
                "s": 6,
                "params": {
                    "constraints": {"pins": {"1": [0, 0]}},
                    "pins": {"1": [2, 2]},
                },
            },
        )
        assert status == 400
        assert "conflicting" in err["message"]

    def test_malformed_pin_body_http_400(self, server):
        status, err = _post(
            server.url, "/update", {"graph": "grid", "pins": 42}
        )
        assert status == 400


class TestClusterConstraints:
    """Pin → drag → unpin across a live 2-worker cluster (the
    ``--workers 2`` serving mode): pins route through the owning shard's
    engine exactly like the in-process path."""

    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.cluster import ClusterRouter

        router = ClusterRouter(
            2, compute_threads=1, timeout=60.0, cache_mb=32.0
        ).start()
        yield router
        router.close()

    def test_pin_drag_unpin_two_workers(self, cluster):
        body = {"graph": "barth", "scale": "tiny", "s": 6, "seed": 0}
        first = cluster.layout(body)
        assert first["status"] in ("computed", "memory-hit")

        up = cluster.update(
            {"graph": "barth", "scale": "tiny", "pins": {"4": [0.25, 0.25]}}
        )
        assert up["pinned"] == 1
        pinned = cluster.layout(body)
        assert tuple(pinned["coords"][4]) == (0.25, 0.25)

        cluster.update(
            {"graph": "barth", "scale": "tiny", "pins": {"4": [0.5, -0.5]}}
        )
        dragged = cluster.layout(body)
        assert tuple(dragged["coords"][4]) == (0.5, -0.5)

        up = cluster.update({"graph": "barth", "scale": "tiny", "unpins": [4]})
        assert up["unpinned"] == 1
        free = cluster.layout(body)
        assert "constraints" not in (free.get("params") or {})


# ---------------------------------------------------------------------------
# LOD: per-level mass vectors reach the coarse solve
# ---------------------------------------------------------------------------


class TestLodMasses:
    def test_level_masses_from_hierarchy(self):
        g = grid2d(16, 16)
        h = build_lod_hierarchy(g, coarsest_size=32)
        if not h.levels:
            pytest.skip("graph too small to coarsen")
        depth = len(h.levels)
        masses = _level_masses(parhde, h, depth, {})
        assert masses  # supernodes aggregate > 1 finest vertex
        expected = h.mass_at(depth)
        for v, m in masses.items():
            assert m == float(expected[v]) and m != 1.0

    def test_level_masses_skipped_when_user_constrains(self):
        g = grid2d(16, 16)
        h = build_lod_hierarchy(g, coarsest_size=32)
        if not h.levels:
            pytest.skip("graph too small to coarsen")
        depth = len(h.levels)
        assert _level_masses(parhde, h, depth, {"masses": {0: 2.0}}) is None
        assert (
            _level_masses(parhde, h, depth, {"constraints": {}}) is None
        )
        assert _level_masses(parhde, h, depth, {"rounds": 2}) is None

    def test_mass_weighted_coarse_layout_not_worse(self):
        """The satellite's before/after check: feeding supernode masses
        into the coarse solve must not degrade coarse-level stress."""
        from repro.lod.progressive import progressive_layout
        from repro.metrics import sampled_stress

        g = grid2d(16, 16)
        frames = list(progressive_layout(g, 8, seed=0))
        final = frames[-1].result
        assert final.coords.shape == (g.n, 2)
        assert np.isfinite(sampled_stress(g, final.coords, seed=0))
