"""Tests for the drawing substrate: PNG codec, rasterizer, renderer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.drawing import (
    Canvas,
    PALETTE,
    category_colors,
    fit_to_canvas,
    partition_edge_colors,
    read_png,
    render_layout,
    save_drawing,
    write_png,
)


class TestPNG:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, size=(13, 17, 3)).astype(np.uint8)
        p = tmp_path / "x.png"
        write_png(p, img)
        np.testing.assert_array_equal(read_png(p), img)

    def test_magic_bytes(self, tmp_path):
        img = np.zeros((2, 2, 3), dtype=np.uint8)
        p = tmp_path / "x.png"
        write_png(p, img)
        assert p.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"

    def test_one_pixel(self, tmp_path):
        img = np.array([[[255, 0, 128]]], dtype=np.uint8)
        p = tmp_path / "x.png"
        write_png(p, img)
        np.testing.assert_array_equal(read_png(p), img)

    def test_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(ValueError):
            write_png(tmp_path / "x.png", np.zeros((3, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            write_png(tmp_path / "x.png", np.zeros((3, 3, 3), dtype=np.float64))

    def test_reader_rejects_garbage(self, tmp_path):
        p = tmp_path / "x.png"
        p.write_bytes(b"not a png at all")
        with pytest.raises(ValueError, match="not a PNG"):
            read_png(p)

    def test_reader_detects_corruption(self, tmp_path):
        img = np.zeros((4, 4, 3), dtype=np.uint8)
        p = tmp_path / "x.png"
        write_png(p, img)
        data = bytearray(p.read_bytes())
        data[30] ^= 0xFF  # flip a bit inside IHDR payload
        p.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            read_png(p)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        h=st.integers(1, 12),
        w=st.integers(1, 12),
        seed=st.integers(0, 100),
    )
    def test_roundtrip_property(self, tmp_path, h, w, seed):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, size=(h, w, 3)).astype(np.uint8)
        p = tmp_path / f"p{h}x{w}.png"
        write_png(p, img)
        np.testing.assert_array_equal(read_png(p), img)


class TestCanvas:
    def test_background(self):
        c = Canvas(5, 4, background=(10, 20, 30))
        assert c.pixels.shape == (4, 5, 3)
        assert np.all(c.pixels == [10, 20, 30])

    def test_line_endpoints_drawn(self):
        c = Canvas(20, 20)
        c.draw_lines([2.0], [3.0], [15.0], [17.0], (0, 0, 0))
        assert tuple(c.pixels[3, 2]) == (0, 0, 0)
        assert tuple(c.pixels[17, 15]) == (0, 0, 0)

    def test_horizontal_line_contiguous(self):
        c = Canvas(10, 3)
        c.draw_lines([0.0], [1.0], [9.0], [1.0], (0, 0, 0))
        assert np.all(c.pixels[1, :, 0] == 0)

    def test_clipping_out_of_bounds(self):
        c = Canvas(10, 10)
        c.draw_lines([-5.0], [-5.0], [20.0], [20.0], (0, 0, 0))  # no crash
        assert c.ink_fraction() > 0

    def test_per_edge_colors(self):
        c = Canvas(10, 10)
        colors = np.array([[255, 0, 0], [0, 255, 0]], dtype=np.uint8)
        c.draw_lines([0.0, 0.0], [0.0, 9.0], [9.0, 9.0], [0.0, 9.0], colors)
        assert tuple(c.pixels[0, 5]) == (255, 0, 0)
        assert tuple(c.pixels[9, 5]) == (0, 255, 0)

    def test_color_shape_validation(self):
        c = Canvas(5, 5)
        with pytest.raises(ValueError):
            c.draw_lines([0.0], [0.0], [1.0], [1.0], np.zeros((3, 3), np.uint8))

    def test_points_radius(self):
        c = Canvas(9, 9)
        c.draw_points([4.0], [4.0], (0, 0, 0), radius=1)
        assert np.all(c.pixels[3:6, 3:6] == 0)

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Canvas(0, 5)


class TestRender:
    def test_fit_preserves_aspect(self, rng):
        coords = rng.random((50, 2)) * [10.0, 1.0]
        px, py = fit_to_canvas(coords, 200, 200, 10)
        assert px.max() <= 190 and px.min() >= 10
        span_ratio = (px.max() - px.min()) / (py.max() - py.min())
        assert span_ratio == pytest.approx(10.0, rel=0.05)

    def test_fit_degenerate_layout(self):
        coords = np.zeros((4, 2))
        px, py = fit_to_canvas(coords, 100, 100, 10)
        assert np.all(np.isfinite(px)) and np.all(np.isfinite(py))

    def test_fit_margin_validation(self, rng):
        with pytest.raises(ValueError):
            fit_to_canvas(rng.random((4, 2)), 20, 20, 10)

    def test_render_mesh_has_ink(self, tiny_mesh, rng):
        coords = rng.random((tiny_mesh.n, 2))
        canvas = render_layout(tiny_mesh, coords, width=120, height=120)
        assert 0.01 < canvas.ink_fraction() < 0.99

    def test_render_max_edges_subsample(self, tiny_mesh, rng):
        coords = rng.random((tiny_mesh.n, 2))
        full = render_layout(tiny_mesh, coords, width=100, height=100)
        sub = render_layout(
            tiny_mesh, coords, width=100, height=100, max_edges=50
        )
        assert sub.ink_fraction() < full.ink_fraction()

    def test_save_drawing(self, tiny_mesh, rng, tmp_path):
        coords = rng.random((tiny_mesh.n, 2))
        p = tmp_path / "mesh.png"
        save_drawing(tiny_mesh, coords, p, width=80, height=80)
        img = read_png(p)
        assert img.shape == (80, 80, 3)

    def test_render_shape_validation(self, tiny_mesh):
        with pytest.raises(ValueError):
            render_layout(tiny_mesh, np.zeros((3, 2)))


class TestColors:
    def test_category_colors_cycle(self):
        labels = np.arange(2 * len(PALETTE))
        colors = category_colors(labels)
        np.testing.assert_array_equal(colors[: len(PALETTE)], colors[len(PALETTE) :])

    def test_category_rejects_negative(self):
        with pytest.raises(ValueError):
            category_colors(np.array([-1]))

    def test_partition_edge_colors(self):
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 3])
        parts = np.array([0, 0, 1, 1])
        colors = partition_edge_colors(u, v, parts)
        # Edge (1,2) crosses the cut.
        np.testing.assert_array_equal(colors[1], [213, 94, 0])
        # Internal edges get their partition color.
        np.testing.assert_array_equal(colors[0], PALETTE[0])
        np.testing.assert_array_equal(colors[2], PALETTE[1])
