"""Tests for layout quality metrics."""

import numpy as np
import pytest

from repro.graph import cycle_graph, grid2d, path_graph
from repro.metrics import (
    edge_length_stats,
    optimal_scale,
    principal_angles,
    rayleigh_quotients,
    sampled_stress,
    spread,
    stress_from_distances,
)


class TestStress:
    def test_perfect_line_embedding_zero_stress(self):
        g = path_graph(30)
        coords = np.column_stack([np.arange(30.0), np.zeros(30)])
        assert sampled_stress(g, coords, samples=5, seed=0) < 1e-12

    def test_scale_invariance(self):
        g = path_graph(25)
        coords = np.column_stack([np.arange(25.0), np.zeros(25)])
        s1 = sampled_stress(g, coords, samples=4, seed=1)
        s2 = sampled_stress(g, coords * 37.0, samples=4, seed=1)
        assert s1 == pytest.approx(s2, abs=1e-12)

    def test_random_layout_worse_than_good_layout(self, tiny_mesh):
        from repro import parhde

        rng = np.random.default_rng(0)
        good = parhde(tiny_mesh, s=10, seed=0).coords
        bad = rng.standard_normal((tiny_mesh.n, 2))
        assert sampled_stress(tiny_mesh, good, seed=2) < sampled_stress(
            tiny_mesh, bad, seed=2
        )

    def test_optimal_scale_minimizes(self, rng):
        e = rng.random(50) + 0.5
        d = rng.random(50) + 0.5
        a = optimal_scale(e, d)
        w = 1.0 / d**2

        def stress_at(alpha):
            return float((w * (alpha * e - d) ** 2).sum())

        assert stress_at(a) <= stress_at(a * 1.01)
        assert stress_at(a) <= stress_at(a * 0.99)

    def test_stress_from_distances_excludes_self(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        D = np.array([[0.0, 1.0]])
        val = stress_from_distances(coords, np.array([0]), D)
        assert val == pytest.approx(0.0)

    def test_disconnected_rejected(self):
        from repro.graph import from_edges

        g = from_edges(4, [0, 2], [1, 3])
        with pytest.raises(ValueError, match="connected"):
            sampled_stress(g, np.zeros((4, 2)), samples=2, seed=0)


class TestPrincipalAngles:
    def test_identical_subspaces(self, rng):
        X = rng.standard_normal((40, 2))
        # Any invertible recombination spans the same plane.
        Y = X @ np.array([[2.0, 1.0], [0.0, 3.0]])
        ang = principal_angles(X, Y)
        # arccos amplifies rounding near 1, so the tolerance is loose.
        np.testing.assert_allclose(ang, 0.0, atol=1e-6)

    def test_orthogonal_subspaces(self):
        n = 10
        X = np.zeros((n, 1))
        Y = np.zeros((n, 1))
        X[0, 0] = 1.0
        Y[1, 0] = 1.0
        ang = principal_angles(X, Y)
        assert ang[0] == pytest.approx(np.pi / 2)

    def test_weighted_inner_product(self, rng):
        d = rng.integers(1, 5, size=30).astype(float)
        X = rng.standard_normal((30, 2))
        ang = principal_angles(X, X.copy(), d)
        np.testing.assert_allclose(ang, 0.0, atol=1e-6)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            principal_angles(rng.random((5, 2)), rng.random((6, 2)))


class TestEdgeStats:
    def test_good_layout_short_edges(self):
        g = grid2d(10, 10)
        ids = np.arange(100)
        coords = np.column_stack([ids // 10, ids % 10]).astype(float)
        stats = edge_length_stats(g, coords)
        # Every edge has unit length in the natural embedding.
        assert stats["max"] == pytest.approx(stats["median"])
        assert stats["mean"] < 0.5  # short relative to the spread

    def test_spread(self):
        coords = np.array([[1.0, 0.0], [-1.0, 0.0]])
        assert spread(coords) == pytest.approx(1.0)

    def test_empty_edges(self):
        from repro.graph import from_edges

        g = from_edges(3, [], [])
        stats = edge_length_stats(g, np.zeros((3, 2)))
        assert stats["mean"] == 0.0


class TestRayleigh:
    def test_cycle_exact_values(self):
        g = cycle_graph(16)
        # Exact degree-normalized eigenvectors: cos/sin of the angle.
        t = 2 * np.pi * np.arange(16) / 16
        coords = np.column_stack([np.cos(t), np.sin(t)])
        rq = rayleigh_quotients(g, coords)
        # x'Lx/x'Dx = lambda_L / degree = (2 - 2 cos(2 pi/n)) / 2.
        expected = 1 - np.cos(2 * np.pi / 16)
        np.testing.assert_allclose(rq, expected, atol=1e-9)

    def test_nonnegative(self, tiny_mesh, rng):
        coords = rng.standard_normal((tiny_mesh.n, 2))
        assert np.all(rayleigh_quotients(tiny_mesh, coords) >= 0)
