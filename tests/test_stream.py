"""Tests for the dynamic-graph streaming subsystem (repro.stream)."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.bfs import run_sources
from repro.core import load_layout, parhde, save_layout
from repro.core.serialize import FORMAT_VERSION
from repro.graph import from_edges, grid2d, preprocess, uniform_random
from repro.metrics import sampled_stress
from repro.parallel import Ledger
from repro.service import (
    BadRequest,
    LayoutCache,
    LayoutEngine,
    LayoutRequest,
    UpdateRequest,
    graph_digest,
    layout_fingerprint,
    make_server,
)
from repro.stream import (
    DynamicGraph,
    EdgeDelta,
    StreamPolicy,
    StreamSession,
    bfs_work_units,
    edge_delta,
    parse_events,
    repair_distances,
)


# ---------------------------------------------------------------------------
# EdgeDelta
# ---------------------------------------------------------------------------
class TestEdgeDelta:
    def test_canonical_endpoints_and_dedup(self):
        d = edge_delta(inserts=[(5, 2), (2, 5), (1, 3)], deletes=[(9, 4)])
        assert d.n_inserts == 2 and d.n_deletes == 1
        assert (d.insert_u < d.insert_v).all()
        assert set(zip(d.insert_u.tolist(), d.insert_v.tolist())) == {
            (2, 5),
            (1, 3),
        }
        assert (d.delete_u[0], d.delete_v[0]) == (4, 9)
        assert len(d) == 3

    def test_rejects_self_loops_and_bad_weights(self):
        with pytest.raises(ValueError, match="self loop"):
            edge_delta(inserts=[(3, 3)])
        with pytest.raises(ValueError, match="negative"):
            edge_delta(deletes=[(-1, 2)])
        with pytest.raises(ValueError, match="non-positive weight"):
            edge_delta(inserts=[(1, 2, 0.0)])

    def test_edge_in_both_lists_rejected(self):
        with pytest.raises(ValueError, match="both inserts and deletes"):
            edge_delta(inserts=[(1, 2)], deletes=[(2, 1)])

    def test_weight_detection(self):
        assert not edge_delta(inserts=[(1, 2)]).is_weighted
        d = edge_delta(inserts=[(1, 2, 2.5)])
        assert d.is_weighted
        assert d.insert_weights().tolist() == [2.5]
        assert edge_delta(inserts=[(1, 2)]).insert_weights().tolist() == [1.0]

    def test_from_events_last_op_wins(self):
        d = EdgeDelta.from_events(
            [("+", 1, 2), ("-", 1, 2), ("-", 3, 4), ("+", 4, 3)]
        )
        assert d.n_inserts == 1 and d.n_deletes == 1
        assert (d.insert_u[0], d.insert_v[0]) == (3, 4)
        assert (d.delete_u[0], d.delete_v[0]) == (1, 2)
        assert not d.is_weighted  # no event carried a weight

    def test_from_events_weighted(self):
        d = EdgeDelta.from_events([("+", 2, 1, 2.0)])
        assert d.is_weighted and d.insert_weights().tolist() == [2.0]
        with pytest.raises(ValueError, match="delete event"):
            EdgeDelta.from_events([("-", 1, 2, 3.0)])

    def test_json_roundtrip(self):
        d = edge_delta(inserts=[(1, 2, 1.5)], deletes=[(3, 7)])
        d2 = EdgeDelta.from_json(d.to_json())
        assert d2.to_json() == d.to_json()
        assert d2.is_weighted

    def test_parse_events(self):
        text = """
        # header comment
        + 1 2
        - 3 4   # trailing comment
        ---
        + 5 6 2.5
        """
        events = parse_events(text)
        assert events == [("+", 1, 2), ("-", 3, 4), ("|",), ("+", 5, 6, 2.5)]
        with pytest.raises(ValueError, match="line 1"):
            parse_events("* 1 2")
        with pytest.raises(ValueError, match="malformed"):
            parse_events("+ 1")

    def test_max_endpoint(self):
        assert edge_delta().max_endpoint() == -1
        assert edge_delta(inserts=[(1, 9)], deletes=[(2, 4)]).max_endpoint() == 9


# ---------------------------------------------------------------------------
# DynamicGraph overlay
# ---------------------------------------------------------------------------
class TestDynamicGraph:
    def test_insert_and_delete_visible(self, small_grid):
        dyn = DynamicGraph(small_grid)
        assert dyn.epoch == 0
        u, v = 0, small_grid.n - 1
        assert not dyn.has_edge(u, v)
        applied = dyn.apply(edge_delta(inserts=[(u, v)]))
        assert dyn.epoch == 1 and applied.size == 1
        assert dyn.has_edge(u, v) and dyn.has_edge(v, u)
        assert dyn.m == small_grid.m + 1
        assert v in dyn.neighbors(u)
        nbr = int(small_grid.neighbors(0)[0])
        dyn.apply(edge_delta(deletes=[(0, nbr)]))
        assert not dyn.has_edge(0, nbr)
        assert nbr not in dyn.neighbors(0)
        assert dyn.m == small_grid.m

    def test_neighbors_sorted_and_base_view_untouched(self, small_grid):
        dyn = DynamicGraph(small_grid)
        dyn.apply(edge_delta(inserts=[(5, 100)]))
        merged = dyn.neighbors(5)
        assert (np.diff(merged) > 0).all()
        # vertices away from the edit keep the zero-copy base view
        assert np.shares_memory(dyn.neighbors(50), small_grid.neighbors(50))

    def test_degree_accounting(self, small_grid):
        dyn = DynamicGraph(small_grid)
        d0 = small_grid.degrees.copy()
        dyn.apply(edge_delta(inserts=[(0, small_grid.n - 1)]))
        deg = dyn.degrees
        assert deg[0] == d0[0] + 1 and deg[-1] == d0[-1] + 1
        assert dyn.degree(0) == d0[0] + 1
        assert (deg.sum() - d0.sum()) == 2
        wd = dyn.weighted_degrees
        assert wd[0] == small_grid.weighted_degrees[0] + 1.0

    def test_strict_rejects_noops_atomically(self, small_grid):
        dyn = DynamicGraph(small_grid)
        nbr = int(small_grid.neighbors(0)[0])
        with pytest.raises(ValueError, match="existing edge"):
            dyn.apply(edge_delta(inserts=[(0, nbr)]))
        with pytest.raises(ValueError, match="missing edge"):
            dyn.apply(edge_delta(deletes=[(0, small_grid.n - 1)]))
        assert dyn.epoch == 0 and dyn.overlay_edges == 0

    def test_nonstrict_skips_noops(self, small_grid):
        dyn = DynamicGraph(small_grid)
        nbr = int(small_grid.neighbors(0)[0])
        applied = dyn.apply(
            edge_delta(inserts=[(0, nbr)], deletes=[(0, small_grid.n - 1)]),
            strict=False,
        )
        assert applied.size == 0 and applied.skipped == 2
        assert dyn.epoch == 1  # epoch bumps even for all-no-op batches

    def test_out_of_range_vertex_rejected(self, small_grid):
        dyn = DynamicGraph(small_grid)
        with pytest.raises(ValueError, match="vertex set is fixed"):
            dyn.apply(edge_delta(inserts=[(0, small_grid.n)]))

    def test_to_csr_matches_direct_build(self, small_grid):
        dyn = DynamicGraph(small_grid)
        dyn.apply(
            edge_delta(
                inserts=[(0, 100), (3, 77)],
                deletes=[(0, int(small_grid.neighbors(0)[0]))],
            )
        )
        u, v = small_grid.edge_list()
        edges = set(zip(u.tolist(), v.tolist()))
        edges -= {(0, int(small_grid.neighbors(0)[0]))}
        edges |= {(0, 100), (3, 77)}
        eu = np.array([e[0] for e in sorted(edges)])
        ev = np.array([e[1] for e in sorted(edges)])
        direct = from_edges(small_grid.n, eu, ev)
        assert graph_digest(dyn.to_csr()) == graph_digest(direct)
        # compaction folds the overlay and preserves content
        dyn.compact()
        assert dyn.overlay_edges == 0
        assert graph_digest(dyn.base) == graph_digest(direct)

    def test_compaction_threshold(self, path10):
        dyn = DynamicGraph(path10, compact_threshold=0.2)
        assert not dyn.needs_compaction
        dyn.apply(edge_delta(inserts=[(0, 5), (1, 7)]))
        assert dyn.overlay_fraction == pytest.approx(2 / 9)
        assert dyn.needs_compaction
        assert dyn.maybe_compact()
        assert dyn.overlay_edges == 0 and not dyn.needs_compaction

    def test_inverse_restores_graph(self, small_grid):
        dyn = DynamicGraph(small_grid)
        before = graph_digest(dyn.to_csr())
        applied = dyn.apply(
            edge_delta(
                inserts=[(0, 100)],
                deletes=[(0, int(small_grid.neighbors(0)[0]))],
            )
        )
        assert graph_digest(dyn.to_csr()) != before
        dyn.apply(applied.inverse())
        assert graph_digest(dyn.to_csr()) == before

    def test_weighted_base_weights_preserved(self):
        u = np.array([0, 1, 2, 0])
        v = np.array([1, 2, 3, 3])
        w = np.array([1.0, 2.0, 3.0, 4.0])
        g = from_edges(4, u, v, w)
        dyn = DynamicGraph(g)
        assert dyn.edge_weight(1, 2) == 2.0
        dyn.apply(edge_delta(inserts=[(1, 3, 5.5)], deletes=[(0, 1)]))
        assert dyn.edge_weight(1, 3) == 5.5
        with pytest.raises(KeyError):
            dyn.edge_weight(0, 1)
        snap = dyn.to_csr()
        assert snap.is_weighted
        wd = dyn.weighted_degrees
        np.testing.assert_allclose(wd, snap.weighted_degrees)

    def test_weighted_insert_on_unweighted_base_rejected(self, small_grid):
        dyn = DynamicGraph(small_grid)
        with pytest.raises(ValueError, match="edge-weighted base"):
            dyn.apply(edge_delta(inserts=[(0, 100, 2.0)]))

    def test_overlay_entries_signs(self, path10):
        dyn = DynamicGraph(path10)
        dyn.apply(edge_delta(inserts=[(0, 9)], deletes=[(4, 5)]))
        us, vs, ws, ss = dyn.overlay_entries()
        entries = {
            (int(a), int(b)): (float(wt), float(sg))
            for a, b, wt, sg in zip(us, vs, ws, ss)
        }
        assert entries == {(0, 9): (1.0, 1.0), (4, 5): (1.0, -1.0)}


# ---------------------------------------------------------------------------
# Incremental repair
# ---------------------------------------------------------------------------
def _repair_and_check(g, inserts, deletes, pivots):
    """Repair B after the delta and compare against fresh traversals."""
    ms = run_sources(g, pivots)
    B = ms.distances.copy()
    dyn = DynamicGraph(g)
    applied = dyn.apply(edge_delta(inserts=inserts, deletes=deletes))
    led = Ledger()
    with led.phase("BFS"):
        rep = repair_distances(
            dyn, B, np.asarray(pivots), applied.inserted, applied.deleted,
            ledger=led,
        )
    fresh = run_sources(dyn.to_csr(), pivots)
    np.testing.assert_array_equal(B, fresh.distances)
    return rep, led


class TestIncrementalRepair:
    def test_insertions_exact(self, small_grid):
        rep, led = _repair_and_check(
            small_grid, [(0, small_grid.n - 1), (3, 140)], [], [0, 7, 101]
        )
        assert not rep.disconnected
        assert rep.edges_examined > 0
        assert bfs_work_units(led) > 0

    def test_deletions_exact(self, small_grid):
        dels = [
            (0, int(small_grid.neighbors(0)[0])),
            (50, int(small_grid.neighbors(50)[-1])),
        ]
        rep, _ = _repair_and_check(small_grid, [], dels, [0, 7, 101])
        assert not rep.disconnected

    def test_mixed_exact(self, small_random):
        g = small_random
        dels = [(0, int(g.neighbors(0)[0]))]
        ins = [(1, g.n - 1)] if not g.has_edge(1, g.n - 1) else [(2, g.n - 2)]
        rep, _ = _repair_and_check(g, ins, dels, [0, 3, 9, 27])
        assert not rep.disconnected

    def test_disconnect_detected(self, path10):
        dyn = DynamicGraph(path10)
        ms = run_sources(path10, [0, 9])
        B = ms.distances.copy()
        applied = dyn.apply(edge_delta(deletes=[(4, 5)]))
        rep = repair_distances(
            dyn, B, np.array([0, 9]), applied.inserted, applied.deleted
        )
        assert rep.disconnected

    def test_reconnect_within_batch_not_disconnected(self, path10):
        dyn = DynamicGraph(path10)
        ms = run_sources(path10, [0, 9])
        B = ms.distances.copy()
        applied = dyn.apply(edge_delta(deletes=[(4, 5)], inserts=[(3, 6)]))
        rep = repair_distances(
            dyn, B, np.array([0, 9]), applied.inserted, applied.deleted
        )
        assert not rep.disconnected
        fresh = run_sources(dyn.to_csr(), [0, 9])
        np.testing.assert_array_equal(B, fresh.distances)

    def test_drift_metric(self, path10):
        dyn = DynamicGraph(path10)
        ms = run_sources(path10, [0])
        B = ms.distances.copy()
        applied = dyn.apply(edge_delta(inserts=[(0, 9)]))
        rep = repair_distances(
            dyn, B, np.array([0]), applied.inserted, applied.deleted
        )
        # d(0, v) changes for v in {6..9}: new distances via the shortcut
        assert rep.changed[0] == 4
        assert rep.drift == pytest.approx(4 / 10)
        assert rep.column_drift[0] == pytest.approx(4 / 10)

    def test_noop_delta_examines_nothing(self, small_grid):
        rep, led = _repair_and_check(small_grid, [], [], [0, 5])
        assert rep.edges_examined == 0
        assert rep.columns_touched == 0
        assert bfs_work_units(led) == 0

    def test_weighted_graph_rejected(self):
        g = from_edges(
            4,
            np.array([0, 1, 2]),
            np.array([1, 2, 3]),
            np.array([1.0, 2.0, 1.0]),
        )
        dyn = DynamicGraph(g)
        B = np.zeros((4, 1))
        with pytest.raises(ValueError, match="hop distances only"):
            repair_distances(
                dyn, B, np.array([0]),
                np.empty((0, 2), np.int64), np.empty((0, 2), np.int64),
            )


# ---------------------------------------------------------------------------
# StreamSession
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def medium_graph():
    return preprocess(uniform_random(10, degree=8, seed=3), name="stream-med")


class TestStreamSession:
    def test_repair_path_exact_and_cheap(self, medium_graph):
        g = medium_graph
        sess = StreamSession(g, 8, seed=0)
        nbr = int(g.neighbors(0)[0])
        ins = (1, g.n - 2) if not g.has_edge(1, g.n - 2) else (1, g.n - 3)
        up = sess.update(edge_delta(inserts=[ins], deletes=[(0, nbr)]))
        assert up.mode == "repair" and up.epoch == 1
        # repaired distances match fresh traversals from the same pivots
        fresh = run_sources(sess.graph, sess.pivots)
        np.testing.assert_array_equal(sess.B, fresh.distances)
        # repair is much cheaper than the from-scratch BFS phase
        full = parhde(sess.graph, 8, seed=0)
        assert bfs_work_units(full.ledger) > 5 * bfs_work_units(up.ledger)
        # quality matches the from-scratch layout
        s_sess = sampled_stress(sess.graph, sess.coords, samples=8, seed=0)
        s_full = sampled_stress(sess.graph, full.coords, samples=8, seed=0)
        assert s_sess <= s_full * 1.05

    def test_drift_escalates_to_relayout(self):
        # a long path: one shortcut changes a huge fraction of distances
        g = grid2d(2, 50)
        sess = StreamSession(g, 6, seed=0)
        up = sess.update(edge_delta(inserts=[(0, g.n - 1)]))
        assert up.mode == "relayout" and up.reason == "drift"
        assert not up.warm_pivots  # drift re-pivots from scratch
        fresh = run_sources(sess.graph, sess.pivots)
        np.testing.assert_array_equal(sess.B, fresh.distances)

    def test_staleness_escalates_warm(self, medium_graph):
        g = medium_graph
        policy = StreamPolicy(staleness_limit=2)
        sess = StreamSession(g, 8, seed=0, policy=policy)
        pivots_before = sess.pivots.copy()
        nbr0 = int(g.neighbors(0)[0])
        up1 = sess.update(edge_delta(deletes=[(0, nbr0)]))
        assert up1.mode == "repair"
        up2 = sess.update(edge_delta(inserts=[(0, nbr0)]))
        assert up2.mode == "relayout" and up2.reason == "staleness"
        assert up2.warm_pivots
        np.testing.assert_array_equal(sess.pivots, pivots_before)

    def test_disconnect_rolls_back(self, path10):
        sess = StreamSession(path10, 3, seed=0)
        coords_before = sess.coords.copy()
        B_before = sess.B.copy()
        with pytest.raises(ValueError, match="disconnects"):
            sess.update(edge_delta(deletes=[(4, 5)]))
        assert sess.epoch == 0
        assert sess.dyn.has_edge(4, 5)
        np.testing.assert_array_equal(sess.coords, coords_before)
        np.testing.assert_array_equal(sess.B, B_before)
        # the session remains usable after the rollback
        up = sess.update(edge_delta(inserts=[(0, 9)]))
        assert up.epoch == 1

    def test_frames_anchor_to_previous(self, medium_graph):
        g = medium_graph
        sess = StreamSession(g, 8, seed=0)
        before = sess.coords.copy()
        nbr = int(g.neighbors(1)[0])
        sess.update(edge_delta(deletes=[(1, nbr)]))
        # Procrustes anchoring: tiny edit => tiny coordinate motion
        # (without it, eigensolver sign flips would move every vertex)
        motion = np.linalg.norm(sess.coords - before) / np.linalg.norm(before)
        assert motion < 0.5

    def test_warm_eigensolve_on_noop_update(self, medium_graph):
        g = medium_graph
        sess = StreamSession(g, 8, seed=0)
        nbr = int(g.neighbors(0)[0])
        sess.update(edge_delta(deletes=[(0, nbr)]))  # populates prev Y
        # all-no-op batch (the edge is already gone): Z is unchanged, so
        # the previous Ritz pairs satisfy the residual test exactly
        up = sess.update(edge_delta(deletes=[(0, nbr)]), strict=False)
        assert up.mode == "repair"
        assert up.applied_edits == 0 and up.skipped_edits == 1
        assert up.warm_eigensolve

    def test_weighted_graph_always_relayouts(self):
        u = np.array([0, 1, 2, 3, 0])
        v = np.array([1, 2, 3, 4, 4])
        w = np.array([1.0, 2.0, 1.0, 1.0, 2.0])
        g = from_edges(5, u, v, w)
        sess = StreamSession(g, 3, seed=0)
        up = sess.update(edge_delta(inserts=[(1, 3, 1.5)]))
        assert up.mode == "relayout" and up.reason == "weighted"

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            StreamPolicy(drift_threshold=0.0)
        with pytest.raises(ValueError, match="staleness_limit"):
            StreamPolicy(staleness_limit=0)

    def test_plain_ortho_warm_prefix(self, medium_graph):
        g = medium_graph
        sess = StreamSession(g, 8, seed=0, ortho="plain")
        # edit far from the first pivots' BFS trees is not guaranteed, so
        # just assert the repair path still produces exact B and sane S
        nbr = int(g.neighbors(g.n - 1)[0])
        up = sess.update(edge_delta(deletes=[(g.n - 1, nbr)]))
        if up.mode == "repair":
            fresh = run_sources(sess.graph, sess.pivots)
            np.testing.assert_array_equal(sess.B, fresh.distances)
            # S is orthonormal (plain inner product)
            gram = sess.S.T @ sess.S
            np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-8)

    def test_snapshot_and_warm_start_roundtrip(self, tmp_path, medium_graph):
        g = medium_graph
        sess = StreamSession(g, 8, seed=0)
        path = tmp_path / "frame.npz"
        save_layout(sess.snapshot_result(), path)
        warm = StreamSession.from_layout(g, path)
        np.testing.assert_array_equal(warm.pivots, sess.pivots)
        np.testing.assert_array_equal(warm.B, sess.B)
        nbr = int(g.neighbors(0)[0])
        up = warm.update(edge_delta(deletes=[(0, nbr)]))
        fresh = run_sources(warm.graph, warm.pivots)
        np.testing.assert_array_equal(warm.B, fresh.distances)
        assert up.epoch == 1

    def test_from_layout_requires_subspace(self, tmp_path, medium_graph):
        g = medium_graph
        res = parhde(g, 8, seed=0)
        path = tmp_path / "slim.npz"
        save_layout(res, path, include_subspace=False)
        with pytest.raises(ValueError, match="include_subspace"):
            StreamSession.from_layout(g, path)


# ---------------------------------------------------------------------------
# serialize v3
# ---------------------------------------------------------------------------
class TestSerializeV3:
    def test_default_carries_subspace(self, tmp_path, small_grid):
        res = parhde(small_grid, 6, seed=0)
        path = tmp_path / "full.npz"
        save_layout(res, path)
        loaded = load_layout(path)
        np.testing.assert_array_equal(loaded.B, res.B)
        np.testing.assert_array_equal(loaded.S, res.S)
        np.testing.assert_array_equal(loaded.pivots, res.pivots)
        with np.load(path) as data:
            assert int(data["format_version"]) == FORMAT_VERSION == 3
            assert int(data["has_subspace"]) == 1

    def test_slim_archive_drops_subspace(self, tmp_path, small_grid):
        res = parhde(small_grid, 6, seed=0)
        full, slim = tmp_path / "full.npz", tmp_path / "slim.npz"
        save_layout(res, full)
        save_layout(res, slim, include_subspace=False)
        assert slim.stat().st_size < full.stat().st_size
        loaded = load_layout(slim)
        np.testing.assert_array_equal(loaded.coords, res.coords)
        assert loaded.B.size == 0 and loaded.S.size == 0
        assert loaded.pivots.size == 0
        assert loaded.params["s"] == 6  # params echo survives

    def test_v2_archive_still_loads(self, tmp_path, small_grid):
        res = parhde(small_grid, 6, seed=0)
        path = tmp_path / "v2.npz"
        # a v2 archive: no has_subspace key, version stamp 2
        np.savez_compressed(
            path,
            format_version=np.int64(2),
            coords=res.coords,
            B=res.B,
            S=res.S,
            eigenvalues=res.eigenvalues,
            pivots=res.pivots,
            dropped=np.asarray(res.dropped, dtype=np.int64),
            algorithm=np.array(res.algorithm),
            params=np.array(json.dumps({"s": 6})),
        )
        loaded = load_layout(path)
        np.testing.assert_array_equal(loaded.B, res.B)
        assert loaded.params["s"] == 6

    def test_future_version_clear_error(self, tmp_path, small_grid):
        res = parhde(small_grid, 6, seed=0)
        path = tmp_path / "future.npz"
        save_layout(res, path)
        import zipfile

        # rewrite the version stamp to a future one
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="newer"):
            load_layout(path)


# ---------------------------------------------------------------------------
# Engine updates + cache staleness regression
# ---------------------------------------------------------------------------
def _grid_loader(name, scale, seed):
    if name != "grid":
        raise KeyError(f"unknown graph {name!r}")
    return grid2d(8, 9)


class TestEngineUpdates:
    def test_update_bumps_epoch_and_busts_cache(self):
        """Regression: an updated graph must never serve a stale layout."""
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            req = LayoutRequest(graph="grid", s=6, seed=0)
            cold = eng.submit(req)
            assert cold.status == "computed"
            assert eng.submit(req).cache_hit

            upd = eng.update(
                UpdateRequest(graph="grid", inserts=((0, 71),))
            )
            assert upd.epoch == 1 and upd.inserted == 1 and upd.skipped == 0
            assert upd.m == cold.m + 1

            after = eng.submit(req)
            assert after.status == "computed"  # NOT a cache hit
            assert after.fingerprint != cold.fingerprint
            assert after.m == cold.m + 1
            # and the post-update fingerprint is itself stable
            assert eng.submit(req).cache_hit

    def test_disk_tier_cannot_serve_stale_layout(self, tmp_path):
        """Regression: disk-tier keys include the graph epoch."""
        g = grid2d(8, 9)
        res = parhde(g, 6, seed=0)
        tier2 = tmp_path / "tier2"
        tier2.mkdir()
        # seed the disk tier with the epoch-0 layout, as a restart would
        fp0 = layout_fingerprint(g, "parhde", {"s": 6, "seed": 0}, epoch=0)
        save_layout(res, tier2 / f"{fp0}.npz")
        cache = LayoutCache(max_bytes=10**9, disk_dir=tier2)
        with LayoutEngine(cache=cache, graph_loader=_grid_loader) as eng:
            req = LayoutRequest(graph="grid", s=6, seed=0)
            assert eng.submit(req).status == "disk-hit"
            eng.update(UpdateRequest(graph="grid", inserts=((0, 71),)))
            after = eng.submit(req)
            assert after.status == "computed"
            assert after.fingerprint != fp0

    def test_update_validation(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            with pytest.raises(BadRequest, match="no operations"):
                eng.update(UpdateRequest(graph="grid"))
            with pytest.raises(BadRequest, match="unknown graph"):
                eng.update(UpdateRequest(graph="nope", inserts=((0, 1),)))
            with pytest.raises(BadRequest, match="bad delta"):
                eng.update(UpdateRequest(graph="grid", inserts=((3, 3),)))
            with pytest.raises(BadRequest, match="vertex set is fixed"):
                eng.update(UpdateRequest(graph="grid", inserts=((0, 10**6),)))

    def test_noop_update_counts_skips(self):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            g = grid2d(8, 9)
            nbr = int(g.neighbors(0)[0])
            upd = eng.update(
                UpdateRequest(graph="grid", inserts=((0, nbr),))
            )
            assert upd.skipped == 1 and upd.inserted == 0
            assert upd.epoch == 1  # epoch bumps regardless

    def test_in_memory_graph_not_updatable(self, small_grid):
        with LayoutEngine(graph_loader=_grid_loader) as eng:
            with pytest.raises(BadRequest, match="named graphs only"):
                eng.update(UpdateRequest(graph=small_grid))  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# HTTP /update route
# ---------------------------------------------------------------------------
def _post(url: str, route: str, body: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestUpdateRoute:
    @pytest.fixture()
    def server(self):
        eng = LayoutEngine(graph_loader=_grid_loader, workers=2, timeout=30)
        srv = make_server(eng, port=0).start()
        yield srv
        srv.shutdown()
        eng.close()

    def test_update_then_layout_roundtrip(self, server):
        body = {"graph": "grid", "s": 6}
        status, cold = _post(server.url, "/layout", body)
        assert status == 200 and cold["status"] == "computed"

        status, upd = _post(
            server.url, "/update", {"graph": "grid", "inserts": [[0, 71]]}
        )
        assert status == 200
        assert upd["epoch"] == 1 and upd["inserted"] == 1
        assert upd["m"] == cold["m"] + 1

        status, after = _post(server.url, "/layout", body)
        assert status == 200 and after["status"] == "computed"
        assert after["fingerprint"] != cold["fingerprint"]
        assert after["m"] == cold["m"] + 1

    def test_update_errors(self, server):
        status, err = _post(server.url, "/update", {"graph": "nope",
                                                    "inserts": [[0, 1]]})
        assert status == 400 and err["error"] == "bad_request"
        status, err = _post(server.url, "/update", {"graph": "grid"})
        assert status == 400
        status, err = _post(
            server.url, "/update", {"graph": "grid", "inserts": "zap"}
        )
        assert status == 400
        status, err = _post(
            server.url, "/update", {"graph": "grid", "inserts": [[2, 2]]}
        )
        assert status == 400
