"""Tests for weighted-centroid refinement (section 4.5.3)."""

import numpy as np
import pytest

from repro import parhde, refine
from repro.core.refine import centroid_sweep, residual


def test_residual_zero_for_exact_eigenvectors(tiny_mesh):
    from repro.baselines import spectral_layout

    exact = spectral_layout(tiny_mesh, 2, tol=1e-12, seed=0)
    assert residual(tiny_mesh, exact.coords) < 1e-5


def test_refine_reduces_residual(tiny_mesh):
    hde = parhde(tiny_mesh, s=10, seed=0)
    before = residual(tiny_mesh, hde.coords)
    out = refine(tiny_mesh, hde.coords, tol=1e-5, max_sweeps=500)
    assert out.residual < before
    assert out.sweeps > 0


def test_refine_converges_toward_spectral(tiny_mesh):
    from repro.baselines import spectral_layout
    from repro.metrics import principal_angles

    hde = parhde(tiny_mesh, s=10, seed=0)
    out = refine(tiny_mesh, hde.coords, tol=1e-8, max_sweeps=3000)
    exact = spectral_layout(tiny_mesh, 2, tol=1e-10, seed=0)
    ang = principal_angles(out.coords, exact.coords, tiny_mesh.weighted_degrees)
    assert ang[0] < 0.05


def test_hde_warm_start_cheaper_than_random(tiny_mesh):
    """The 4.5.3 claim: HDE start needs far fewer sweeps than random."""
    rng = np.random.default_rng(0)
    hde = parhde(tiny_mesh, s=10, seed=0)
    warm = refine(tiny_mesh, hde.coords, tol=1e-4, max_sweeps=5000)
    cold = refine(
        tiny_mesh, rng.standard_normal((tiny_mesh.n, 2)), tol=1e-4,
        max_sweeps=5000,
    )
    assert warm.sweeps < cold.sweeps


def test_sweep_keeps_d_orthonormal(tiny_mesh):
    hde = parhde(tiny_mesh, s=8, seed=0)
    out = centroid_sweep(tiny_mesh, hde.coords)
    d = tiny_mesh.weighted_degrees
    G = out.T @ (d[:, None] * out)
    np.testing.assert_allclose(G, np.eye(2), atol=1e-9)
    np.testing.assert_allclose(out.T @ d, 0.0, atol=1e-9)


def test_sweep_shape_validation(tiny_mesh):
    with pytest.raises(ValueError):
        centroid_sweep(tiny_mesh, np.ones((3, 2)))
