"""Tests for the invariant-guard subsystem (repro.validate).

Covers the policy object, the per-phase checkers, the policy threading
through ``parhde`` and ``StreamSession`` (including strict-mode rollback),
the suite runner, and the ``parhde check`` CLI end to end — on clean
datasets (unweighted and weighted) and with every registered fault
injected, each of which must be detected with a nonzero exit status and
a named report line.
"""

import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.core import parhde
from repro.graph import random_integer_weights
from repro.service import graph_digest
from repro.stream import StreamSession, edge_delta
from repro.validate import (
    FAULTS,
    CheckResult,
    InvariantViolation,
    ValidationPolicy,
    ValidationWarning,
    check_bfs_levels,
    check_cache_consistency,
    check_d_orthogonality,
    check_eigenpairs,
    run_injection,
    run_suite,
)


def _failing(phase="DOrtho", check="dortho.residual"):
    return CheckResult(check, phase, residual=1.0, threshold=1e-6)


class TestPolicy:
    def test_coerce(self):
        assert ValidationPolicy.coerce(None).level == "off"
        assert ValidationPolicy.coerce("warn").level == "warn"
        p = ValidationPolicy("strict")
        assert ValidationPolicy.coerce(p) is p

    def test_invalid_level_and_type(self):
        with pytest.raises(ValueError, match="level"):
            ValidationPolicy("loud")
        with pytest.raises(TypeError):
            ValidationPolicy.coerce(3.14)

    def test_deep_defaults_to_strict_only(self):
        assert not ValidationPolicy("off").run_deep
        assert not ValidationPolicy("warn").run_deep
        assert ValidationPolicy("strict").run_deep
        assert ValidationPolicy("warn", deep=True).run_deep
        assert not ValidationPolicy("strict", deep=False).run_deep

    def test_handle_strict_raises(self):
        with pytest.raises(InvariantViolation) as exc:
            ValidationPolicy("strict").handle(_failing())
        assert exc.value.result.check == "dortho.residual"
        assert "residual" in str(exc.value)

    def test_handle_warn_warns_and_returns(self):
        with pytest.warns(ValidationWarning, match="dortho.residual"):
            r = ValidationPolicy("warn").handle(_failing())
        assert not r.ok

    def test_handle_off_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ValidationPolicy("off").handle(_failing())

    def test_handle_passes_ok_results(self):
        ok = CheckResult("bfs.levels", "BFS", 0.0, 0.0)
        assert ValidationPolicy("strict").handle(ok) is ok


class TestCheckers:
    def test_bfs_levels_shape_mismatch(self, small_grid):
        r = check_bfs_levels(small_grid, np.zeros((3, 2)), np.array([0, 1]))
        assert not r.ok and "shape" in r.detail

    def test_bfs_levels_weighted_gets_epsilon(self, small_random):
        g = random_integer_weights(small_random, 1, 9, seed=0)
        from repro.sssp import dijkstra

        B = np.column_stack([dijkstra(g, 0), dijkstra(g, 5)])
        r = check_bfs_levels(g, B, np.array([0, 5]), weighted=True)
        assert r.ok and r.threshold > 0.0

    def test_d_orthogonality_detects_scaling(self):
        n = 40
        rng = np.random.default_rng(0)
        # Orthonormalize against the constant vector too (column 0 of the
        # QR factor), matching the centering invariant the check enforces.
        M = np.column_stack([np.ones(n), rng.normal(size=(n, 3))])
        S = np.linalg.qr(M)[0][:, 1:]
        assert check_d_orthogonality(S, None).ok
        assert not check_d_orthogonality(S * 1.5, None).ok

    def test_eigenpairs_detects_disorder(self):
        Z = np.diag([1.0, 2.0, 3.0])
        Y = np.eye(3)[:, [1, 0]]
        r = check_eigenpairs(Z, np.array([2.0, 1.0]), Y)
        assert not r.ok and "order" in r.detail

    def test_cache_consistency_counts_mismatches(self, small_grid):
        class FakeResult:
            coords = np.zeros((small_grid.n, 2))
            algorithm = "phde"
            params = {"s": 4, "seed": 1}

        r = check_cache_consistency(
            FakeResult(), small_grid, "parhde", {"s": 8, "seed": 1}
        )
        assert r.residual == 2.0  # wrong algorithm + wrong s
        assert "algorithm" in r.detail and "params['s']" in r.detail


class TestPipelineThreading:
    def test_parhde_strict_matches_unvalidated(self, small_random):
        checked = parhde(small_random, 6, seed=0, validate="strict")
        plain = parhde(small_random, 6, seed=0)
        np.testing.assert_array_equal(checked.coords, plain.coords)

    def test_parhde_warn_is_clean(self, small_random):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ValidationWarning)
            parhde(small_random, 6, seed=0, validate="warn")

    def test_parhde_weighted_strict(self, small_random):
        g = random_integer_weights(small_random, 1, 9, seed=3)
        parhde(g, 6, seed=0, weighted=True, validate="strict")

    def test_session_strict_violation_rolls_back(
        self, small_random, monkeypatch
    ):
        sess = StreamSession(small_random, 6, seed=0, validation="strict")
        before_epoch = sess.epoch
        before_digest = graph_digest(sess.graph)
        before_coords = np.array(sess.coords)
        monkeypatch.setattr(
            "repro.stream.session.check_d_orthogonality",
            lambda *a, **k: _failing(),
        )
        with pytest.raises(InvariantViolation):
            sess.update(edge_delta(inserts=[(0, small_random.n - 1)]))
        # The failed update must leave no trace: same epoch, same graph,
        # same coordinates.
        assert sess.epoch == before_epoch
        assert graph_digest(sess.graph) == before_digest
        np.testing.assert_array_equal(sess.coords, before_coords)


class TestRunSuite:
    def test_strict_covers_all_subsystems(self, small_random):
        report = run_suite(small_random, 6, seed=0, policy="strict")
        assert report.ok
        names = {r.check for r in report}
        assert {
            "bfs.levels",
            "dortho.residual",
            "tripleprod.laplacian",
            "eigen.residual",
            "stream.overlay",
            "stream.repair",
            "cache.consistency",
        } <= names
        assert "PASS" in report.format()

    def test_warn_skips_deep_checks(self, small_random):
        report = run_suite(small_random, 6, seed=0, policy="warn")
        assert report.ok
        names = {r.check for r in report}
        assert "stream.repair" not in names and "cache.consistency" not in names

    def test_weighted_suite(self, small_random):
        report = run_suite(
            small_random, 6, seed=0, policy="strict", weighted=True
        )
        assert report.ok


class TestCheckCLI:
    """End-to-end ``parhde check`` on seed datasets."""

    @pytest.mark.parametrize("dataset", ["barth", "ecology"])
    def test_strict_passes_unweighted(self, dataset, capsys):
        rc = main(["check", dataset, "--scale", "tiny", "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out and "FAIL" not in out
        assert "stream.repair" in out  # strict runs the deep checks

    def test_strict_passes_weighted(self, capsys):
        rc = main(
            ["check", "barth", "--scale", "tiny", "--strict", "--weighted"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_inject_list_names_every_fault(self, capsys):
        rc = main(["check", "barth", "--scale", "tiny", "--inject", "list"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in FAULTS:
            assert name in out

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_each_injected_fault_detected(self, fault, capsys):
        # The contract: a corrupted pipeline exits nonzero and the report
        # names the fault.
        rc = main(
            ["check", "barth", "--scale", "tiny", "--inject", fault]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert f"inject {fault}" in out
        assert "CAUGHT" in out and "MISSED" not in out

    def test_inject_all_harness_selftest(self, capsys):
        rc = main(["check", "barth", "--scale", "tiny", "--inject", "all"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"harness: {len(FAULTS)}/{len(FAULTS)} faults caught" in out

    def test_inject_unknown_fault_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["check", "barth", "--scale", "tiny", "--inject", "nope"])
        assert exc.value.code == 2


class TestInjectionAPI:
    def test_run_injection_unknown_name(self, small_random):
        with pytest.raises(KeyError, match="unknown"):
            run_injection(small_random, ["no-such-fault"])

    def test_registry_has_at_least_six_faults(self):
        assert len(FAULTS) >= 6

    def test_all_faults_caught_programmatically(self, small_random):
        outcomes = run_injection(small_random, s=6, seed=0)
        assert len(outcomes) == len(FAULTS)
        missed = [o.fault for o in outcomes if not o.caught]
        assert missed == []
