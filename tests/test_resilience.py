"""Fault-injection tests for :mod:`repro.resilience`.

Every test injects a specific fault (via the chaos failpoint harness or
file corruption) and asserts the documented recovery: a degraded-but-
on-time layout, a retried success, a tripped breaker, a quarantined
archive, a checkpoint resume bitwise-equal to the uninterrupted run —
and never an unhandled exception escaping the serving path.
"""

from __future__ import annotations

import json
import logging
import random
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import parhde
from repro.resilience import (
    BreakerRegistry,
    CheckpointStore,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    PhaseOverrun,
    RetryPolicy,
    TransientError,
    baseline_layout,
    chaos,
    phase_scope,
    resilient_layout,
    split_budget,
    with_retry,
)
from repro.resilience.chaos import ChaosError
from repro.service import (
    LayoutCache,
    LayoutEngine,
    LayoutRequest,
    Overloaded,
    ResilienceConfig,
    Telemetry,
    make_server,
)


@pytest.fixture(autouse=True)
def _disarm_chaos():
    """Failpoint arming is process-global: always clean up."""
    yield
    chaos.reset()


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self) -> float:
        return self.t


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_elapsed_remaining_expired(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.t += 4.0
        assert d.elapsed() == pytest.approx(4.0)
        assert d.remaining() == pytest.approx(6.0)
        assert not d.expired()
        clock.t += 7.0
        assert d.expired()
        with pytest.raises(DeadlineExceeded):
            d.check("unit test")

    def test_phase_budget_overrun(self):
        clock = FakeClock()
        d = Deadline(10.0, phase_budgets={"BFS": 2.0}, clock=clock)
        with d.phase("BFS"):
            clock.t += 1.0  # within budget
        with pytest.raises(PhaseOverrun):
            with d.phase("BFS"):
                clock.t += 3.0  # over the phase budget, total still fine
        assert not d.expired()

    def test_unbudgeted_phase_only_checks_total(self):
        clock = FakeClock()
        d = Deadline(10.0, phase_budgets={"BFS": 2.0}, clock=clock)
        with d.phase("DOrtho"):
            clock.t += 5.0  # no phase budget: fine
        with pytest.raises(DeadlineExceeded):
            with d.phase("DOrtho"):
                clock.t += 6.0  # total blown

    def test_sub_deadline_takes_fraction_of_remaining(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.t += 4.0
        sub = d.sub(0.5)
        assert sub.seconds == pytest.approx(3.0)
        clock.t += 9.0
        with pytest.raises(DeadlineExceeded):
            d.sub(0.5)

    def test_split_budget_normalizes(self):
        budgets = split_budget(10.0, {"A": 3.0, "B": 1.0})
        assert budgets == {"A": pytest.approx(7.5), "B": pytest.approx(2.5)}

    def test_phase_scope_without_deadline_is_noop(self):
        with phase_scope(None, "BFS"):
            pass


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------
class TestRetry:
    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky(attempt: int) -> str:
            attempts.append(attempt)
            if attempt < 2:
                raise TransientError("flake")
            return "ok"

        sleeps: list[float] = []
        out = with_retry(flaky, sleep=sleeps.append)
        assert out == "ok"
        assert attempts == [0, 1, 2]
        assert len(sleeps) == 2 and all(s > 0 for s in sleeps)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def broken(attempt: int):
            calls.append(attempt)
            raise ValueError("malformed")

        with pytest.raises(ValueError):
            with_retry(broken, sleep=lambda _: None)
        assert calls == [0]

    def test_should_retry_predicate_extends_types(self):
        policy = RetryPolicy(
            should_retry=lambda exc: isinstance(exc, ValueError)
        )
        calls = []

        def broken(attempt: int):
            calls.append(attempt)
            raise ValueError("transient after all")

        with pytest.raises(ValueError):
            with_retry(broken, policy=policy, sleep=lambda _: None)
        assert calls == [0, 1, 2]

    def test_deadline_exceeded_is_never_retryable(self):
        calls = []

        def overran(attempt: int):
            calls.append(attempt)
            raise DeadlineExceeded("too slow")

        with pytest.raises(DeadlineExceeded):
            with_retry(overran, sleep=lambda _: None)
        assert calls == [0]

    def test_backoff_never_sleeps_past_the_deadline(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        policy = RetryPolicy(base_delay=5.0, jitter=0.0)
        calls = []

        def flaky(attempt: int):
            calls.append(attempt)
            raise TransientError("flake")

        with pytest.raises(TransientError):
            with_retry(
                flaky, policy=policy, deadline=deadline, sleep=lambda _: None
            )
        assert calls == [0]  # 5s backoff cannot fit in a 1s budget

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        a = policy.delay(2, random.Random(7))
        b = policy.delay(2, random.Random(7))
        assert a == b
        assert 0.2 <= a <= 0.4  # raw 0.4, jittered down by at most half


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=3, reset_timeout=30, clock=clock)
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        assert br.state == "open" and not br.allow()

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=2, reset_timeout=30, clock=clock)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout=30, clock=clock)
        br.record_failure()
        assert not br.allow()
        clock.t += 31.0
        assert br.state == "half-open"
        assert br.allow()  # the probe
        assert not br.allow()  # concurrent arrival during the probe
        br.record_success()
        assert br.state == "closed" and br.allow()

    def test_failed_probe_reopens_for_a_full_window(self):
        clock = FakeClock()
        br = CircuitBreaker(failure_threshold=1, reset_timeout=30, clock=clock)
        br.record_failure()
        clock.t += 31.0
        assert br.allow()
        br.record_failure()
        assert br.state == "open" and not br.allow()
        clock.t += 29.0
        assert not br.allow()  # window restarted at the probe failure

    def test_transitions_are_reported(self):
        clock = FakeClock()
        seen: list[tuple[str, str]] = []
        br = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=30,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        br.record_failure()
        clock.t += 31.0
        br.allow()
        br.record_success()
        assert seen == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_registry_keys_are_independent(self):
        clock = FakeClock()
        reg = BreakerRegistry(1, 30, clock=clock)
        reg.record("bad-graph:parhde", False)
        assert not reg.allow("bad-graph:parhde")
        assert reg.allow("good-graph:parhde")
        snap = reg.snapshot()
        assert snap["open"] == 1
        assert snap["tripped"] == {"bad-graph:parhde": "open"}


# ---------------------------------------------------------------------------
# Chaos harness
# ---------------------------------------------------------------------------
class TestChaos:
    def test_unarmed_failpoint_is_a_noop(self):
        chaos.failpoint("parhde.bfs")

    def test_times_and_skip_control_firing(self):
        with chaos.inject("parhde.bfs", error=True, times=1, skip=1) as fp:
            chaos.failpoint("parhde.bfs")  # skipped
            with pytest.raises(ChaosError):
                chaos.failpoint("parhde.bfs")  # fires
            chaos.failpoint("parhde.bfs")  # budget spent
        assert fp.calls == 3 and fp.hits == 1
        chaos.failpoint("parhde.bfs")  # disarmed again

    def test_nested_arming_restores_the_outer_fault(self):
        with chaos.inject("parhde.bfs", error=True, times=10):
            with chaos.inject("parhde.bfs", times=10):  # benign inner fault
                chaos.failpoint("parhde.bfs")
            with pytest.raises(ChaosError):
                chaos.failpoint("parhde.bfs")

    def test_chaos_error_is_transient(self):
        assert RetryPolicy().is_retryable(ChaosError("injected"))

    def test_corrupt_file_flips_payload_bytes(self, tmp_path):
        p = tmp_path / "archive.bin"
        p.write_bytes(bytes(range(256)))
        flipped = chaos.corrupt_file(p, seed=1, nbytes=3)
        assert flipped == 3
        data = p.read_bytes()
        assert len(data) == 256
        assert data[:128] == bytes(range(128))  # front (magic) untouched
        assert data != bytes(range(256))


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------
class TestLadder:
    def test_clean_run_is_full_tier_and_bitwise_equal(self, small_grid):
        res = resilient_layout(small_grid, 8, seed=3)
        ref = parhde(small_grid, 8, seed=3)
        assert res.quality_tier == "full"
        assert np.array_equal(res.coords, ref.coords)
        rungs = res.params["resilience"]["rungs"]
        assert [r["outcome"] for r in rungs] == ["ok"]

    def test_transient_kernel_fault_is_retried_within_the_rung(
        self, small_grid
    ):
        telemetry = Telemetry()
        with chaos.inject("parhde.eigensolve", error=True, times=1):
            res = resilient_layout(
                small_grid,
                8,
                seed=3,
                retry=RetryPolicy(base_delay=0.0, jitter=0.0),
                telemetry=telemetry,
            )
        assert res.quality_tier == "full"
        assert res.params["resilience"]["retries"] == 1
        assert telemetry.snapshot()["counters"]["resilience.retries"] == 1

    def test_persistent_kernel_fault_descends_to_baseline(self, small_grid):
        telemetry = Telemetry()
        with chaos.inject("parhde.dortho", error=True):
            res = resilient_layout(
                small_grid,
                8,
                seed=3,
                retry=RetryPolicy(max_attempts=1),
                telemetry=telemetry,
            )
        assert res.quality_tier == "baseline"
        outcomes = [r["outcome"] for r in res.params["resilience"]["rungs"]]
        assert outcomes == ["failed", "failed", "failed", "ok"]
        counters = telemetry.snapshot()["counters"]
        assert counters["resilience.degraded.baseline"] == 1
        # Baseline is deterministic: same seed, same floor.
        again = baseline_layout(small_grid, seed=3)
        assert np.array_equal(res.coords, again.coords)

    def test_stalled_phase_degrades_instead_of_blowing_the_deadline(
        self, small_grid
    ):
        t0 = time.perf_counter()
        with chaos.inject("parhde.bfs", sleep=0.35, times=2):
            res = resilient_layout(small_grid, 8, seed=3, deadline=1.0)
        elapsed = time.perf_counter() - t0
        assert res.quality_tier in ("reduced", "coarse", "baseline")
        assert elapsed < 2.0
        overruns = [
            r
            for r in res.params["resilience"]["rungs"]
            if r["outcome"] == "overrun"
        ]
        assert overruns, "the stalled rung should be recorded as an overrun"

    def test_rank_deficiency_is_retried_with_a_larger_subspace(self):
        calls: list[int] = []

        def needy(g, s, **kwargs):
            calls.append(s)
            if len(calls) < 2:
                raise ValueError(
                    f"only 1 independent distance vectors survived (s={s})"
                )
            return baseline_layout(g, dims=kwargs.get("dims", 2))

        from repro.graph import grid2d

        g = grid2d(5, 5)
        res = resilient_layout(
            g,
            6,
            algorithm=needy,
            retry=RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        assert res.params["resilience"]["retries"] == 1
        assert calls == [6, 10]  # restarted with s + 4


# ---------------------------------------------------------------------------
# Crash-safe checkpoints
# ---------------------------------------------------------------------------
class TestCheckpoint:
    PARAMS = dict(algo="parhde", s=8, seed=0)

    def test_killed_run_resumes_bitwise_equal(self, small_grid, tmp_path):
        store = CheckpointStore(tmp_path)
        ck = store.bind(small_grid, self.PARAMS)
        # "Kill" the first run after BFS and DOrtho checkpointed.
        with chaos.inject("parhde.tripleprod", error=RuntimeError("killed")):
            with pytest.raises(RuntimeError, match="killed"):
                parhde(small_grid, 8, seed=0, checkpoint=ck)
        assert ck.stats["saves"] == 2
        assert ck.phases() == ["bfs", "dortho"]

        ck2 = store.bind(small_grid, self.PARAMS)
        res = parhde(small_grid, 8, seed=0, checkpoint=ck2)
        assert ck2.stats["restores"] == 2
        ref = parhde(small_grid, 8, seed=0)
        assert np.array_equal(res.coords, ref.coords)
        assert np.array_equal(np.asarray(res.pivots), np.asarray(ref.pivots))

    def test_corrupt_checkpoint_is_quarantined_and_recomputed(
        self, small_grid, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        ck = store.bind(small_grid, self.PARAMS)
        parhde(small_grid, 8, seed=0, checkpoint=ck)
        chaos.corrupt_file(ck.dir / "bfs.npz", seed=2)

        ck2 = store.bind(small_grid, self.PARAMS)
        res = parhde(small_grid, 8, seed=0, checkpoint=ck2)
        assert ck2.stats["corrupt"] == 1
        assert (ck2.dir / "quarantine" / "bfs.npz").exists()
        assert not (ck2.dir / "bfs.npz").exists() or ck2.stats["saves"] >= 1
        ref = parhde(small_grid, 8, seed=0)
        assert np.array_equal(res.coords, ref.coords)

    def test_missing_sidecar_counts_as_corrupt(self, small_grid, tmp_path):
        store = CheckpointStore(tmp_path)
        ck = store.bind(small_grid, self.PARAMS)
        parhde(small_grid, 8, seed=0, checkpoint=ck)
        (ck.dir / "bfs.npz.sha256").unlink()
        ck2 = store.bind(small_grid, self.PARAMS)
        assert ck2.load("bfs") is None
        assert ck2.stats["corrupt"] == 1

    def test_save_failure_is_absorbed(self, small_grid, tmp_path):
        ck = CheckpointStore(tmp_path).bind(small_grid, self.PARAMS)
        with chaos.inject("checkpoint.save", error=True):
            res = parhde(small_grid, 8, seed=0, checkpoint=ck)
        assert ck.stats["saves"] == 0
        assert ck.stats["errors"] == 2
        ref = parhde(small_grid, 8, seed=0)
        assert np.array_equal(res.coords, ref.coords)

    def test_key_separates_different_parameters(self, small_grid, tmp_path):
        store = CheckpointStore(tmp_path)
        a = store.bind(small_grid, dict(self.PARAMS))
        b = store.bind(small_grid, dict(self.PARAMS, seed=1))
        assert a.dir != b.dir


# ---------------------------------------------------------------------------
# Disk-cache corruption
# ---------------------------------------------------------------------------
class TestCacheCorruption:
    def _seed_cache(self, g, tmp_path):
        cache = LayoutCache(disk_dir=tmp_path / "cache")
        result = parhde(g, 8, seed=0)
        cache.put("deadbeef", result)
        return cache, tmp_path / "cache" / "deadbeef.npz"

    def test_corrupt_entry_quarantined_and_logged_once(
        self, small_grid, tmp_path, caplog
    ):
        cache, payload = self._seed_cache(small_grid, tmp_path)
        cache.clear()
        chaos.corrupt_file(payload, seed=5)
        with caplog.at_level(logging.WARNING, logger="repro.service.cache"):
            assert cache.get("deadbeef") is None
            assert cache.get("deadbeef") is None  # clean miss, no re-read
        warnings = [
            r for r in caplog.records if "corrupt" in r.getMessage()
        ]
        assert len(warnings) == 1
        assert cache.stats()["disk_corrupt"] == 1
        qdir = payload.parent / "quarantine"
        assert (qdir / payload.name).exists()
        assert (qdir / (payload.name + ".sha256")).exists()

    def test_missing_sidecar_adopts_prewarmed_entry(self, small_grid, tmp_path):
        # A payload without a sidecar is what a CLI-saved archive
        # dropped into the cache dir looks like: adopted, not corrupt.
        cache, payload = self._seed_cache(small_grid, tmp_path)
        cache.clear()
        sidecar = payload.with_name(payload.name + ".sha256")
        sidecar.unlink()
        hit = cache.get("deadbeef")
        assert hit is not None
        assert cache.stats()["disk_adopted"] == 1
        assert cache.stats()["disk_corrupt"] == 0
        assert sidecar.exists()  # re-published for checksummed reloads

    def test_corrupt_prewarmed_entry_still_quarantined(
        self, small_grid, tmp_path
    ):
        cache, payload = self._seed_cache(small_grid, tmp_path)
        cache.clear()
        payload.with_name(payload.name + ".sha256").unlink()
        chaos.corrupt_file(payload, seed=9, nbytes=64)
        assert cache.get("deadbeef") is None
        assert (payload.parent / "quarantine" / payload.name).exists()

    def test_failed_disk_write_is_absorbed_and_flush_recovers(
        self, small_grid, tmp_path
    ):
        cache = LayoutCache(disk_dir=tmp_path / "cache")
        result = parhde(small_grid, 8, seed=0)
        with chaos.inject("cache.disk_store", error=True):
            cache.put("cafe", result)
        payload = tmp_path / "cache" / "cafe.npz"
        assert not payload.exists()
        assert cache.stats()["disk_errors"] == 1
        assert cache.flush() == 1
        assert payload.exists()
        assert payload.with_name(payload.name + ".sha256").exists()
        # And the flushed archive round-trips.
        cache.clear()
        hit = cache.get("cafe")
        assert hit is not None and hit[1] == "disk"


# ---------------------------------------------------------------------------
# Engine: the resilience acceptance path
# ---------------------------------------------------------------------------
class TestEngineResilience:
    def test_stalled_bfs_and_corrupt_cache_still_answer_in_time(
        self, small_grid, tmp_path
    ):
        """The headline scenario: chaos stalls BFS *and* the cached disk
        entry is corrupt — submit() must still answer within the request
        deadline with a degraded (non-"full") layout, no exception."""
        cache = LayoutCache(disk_dir=tmp_path / "cache")
        engine = LayoutEngine(
            cache=cache, workers=2, timeout=30.0, resilience=True
        )
        try:
            req = LayoutRequest(graph=small_grid, s=8, seed=0)
            first = engine.submit(req)
            assert first.quality_tier == "full"
            # Rot the disk copy, drop the memory copy.
            cache.clear()
            chaos.corrupt_file(
                tmp_path / "cache" / f"{first.fingerprint}.npz", seed=4
            )
            timeout = 3.0
            with chaos.inject("parhde.bfs", sleep=0.8, times=2):
                t0 = time.perf_counter()
                resp = engine.submit(
                    LayoutRequest(
                        graph=small_grid, s=8, seed=0, timeout=timeout
                    )
                )
                elapsed = time.perf_counter() - t0
            assert elapsed < timeout
            assert resp.quality_tier != "full"
            assert resp.result.coords.shape == (small_grid.n, 2)
            assert cache.stats()["disk_corrupt"] == 1
            counters = engine.stats()["counters"]
            degraded = [
                k for k in counters if k.startswith("resilience.degraded.")
            ]
            assert degraded, "degradation must be visible in telemetry"
        finally:
            engine.close()

    def test_degraded_results_are_never_cached(self, small_grid):
        cache = LayoutCache()
        engine = LayoutEngine(
            cache=cache,
            workers=1,
            timeout=10.0,
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=1)),
        )
        try:
            with chaos.inject("parhde.dortho", error=True):
                resp = engine.submit(
                    LayoutRequest(graph=small_grid, s=8, seed=0)
                )
            assert resp.quality_tier == "baseline"
            assert cache.stats()["stores"] == 0
            assert engine.stats()["counters"]["uncached_degraded"] == 1
        finally:
            engine.close()

    def test_breaker_trips_and_short_circuits(self, small_grid):
        cfg = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1),
            breaker_threshold=2,
            breaker_reset=60.0,
        )
        engine = LayoutEngine(workers=1, timeout=10.0, resilience=cfg)
        try:
            req = LayoutRequest(graph=small_grid, s=8, seed=0)
            with chaos.inject("parhde.bfs", error=True):
                for _ in range(2):
                    assert engine.submit(req).quality_tier == "baseline"
                t0 = time.perf_counter()
                resp = engine.submit(req)
                short_elapsed = time.perf_counter() - t0
            assert resp.status == "degraded"
            assert resp.quality_tier == "baseline"
            assert resp.result.params["degraded_reason"] == "circuit_open"
            assert short_elapsed < 0.5  # served inline, no worker burned
            stats = engine.stats()
            assert stats["breakers"]["open"] == 1
            assert stats["counters"]["breaker.short_circuits"] == 1
            assert stats["counters"]["breaker.to_open"] == 1
            assert stats["gauges"]["breakers_open"] == 1
        finally:
            engine.close()

    def test_resilience_off_keeps_fail_fast_semantics(self, small_grid):
        engine = LayoutEngine(workers=1, timeout=10.0)
        try:
            with chaos.inject("parhde.bfs", error=True):
                from repro.service import ServiceError

                with pytest.raises(ServiceError):
                    engine.submit(
                        LayoutRequest(graph=small_grid, s=8, seed=0)
                    )
        finally:
            engine.close()

    def test_drain_refuses_new_work(self, small_grid):
        engine = LayoutEngine(workers=1, timeout=10.0)
        try:
            assert engine.drain(0.2) is True
            assert engine.draining
            with pytest.raises(Overloaded):
                engine.submit(LayoutRequest(graph=small_grid, s=8, seed=0))
            assert engine.stats()["draining"] is True
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# HTTP graceful shutdown
# ---------------------------------------------------------------------------
class TestServerDrain:
    def test_draining_server_answers_503(self):
        engine = LayoutEngine(workers=1, timeout=10.0)
        server = make_server(engine, port=0).start()
        try:
            with urllib.request.urlopen(server.url + "/healthz") as resp:
                assert json.loads(resp.read()) == {"status": "ok", "workers": 1}
            assert server.drain(0.5) is True
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/healthz")
            assert err.value.code == 503
            assert json.loads(err.value.read())["status"] == "draining"
            post = urllib.request.Request(
                server.url + "/layout",
                data=b'{"graph": "barth"}',
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(post)
            assert err.value.code == 503
            assert json.loads(err.value.read())["error"] == "overloaded"
        finally:
            server.shutdown()
            engine.close()


# ---------------------------------------------------------------------------
# Telemetry gauges
# ---------------------------------------------------------------------------
class TestGauges:
    def test_gauge_moves_both_ways_and_snapshots(self):
        t = Telemetry()
        assert "gauges" not in t.snapshot()
        t.gauge("breakers_open").add(2)
        t.gauge("breakers_open").add(-1)
        t.set_gauge("depth", 7)
        snap = t.snapshot()
        assert snap["gauges"] == {"breakers_open": 1.0, "depth": 7.0}


# ---------------------------------------------------------------------------
# Stream autosave / resume
# ---------------------------------------------------------------------------
class TestStreamAutosave:
    def test_autosave_resume_restores_the_last_frame(
        self, small_grid, tmp_path
    ):
        from repro.stream import StreamSession
        from repro.stream.delta import edge_delta

        path = tmp_path / "auto.npz"
        s1 = StreamSession(small_grid, 8, seed=3, autosave=path)
        assert path.exists()
        s1.update(edge_delta(inserts=[(0, small_grid.n // 2)]))
        g2 = s1.graph

        s2 = StreamSession.resume(g2, path, s=8, seed=3)
        assert s2.epoch == 1
        assert np.array_equal(s2.coords, s1.coords)

    def test_corrupt_autosave_falls_back_to_fresh(self, small_grid, tmp_path):
        from repro.stream import StreamSession

        path = tmp_path / "auto.npz"
        path.write_bytes(b"not an archive")
        session = StreamSession.resume(small_grid, path, s=8, seed=3)
        assert session.epoch == 0
        # The fresh session re-autosaves over the corpse.
        assert path.stat().st_size > 100
