"""Tests for Delta-stepping SSSP against Dijkstra and BFS oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfs import bfs_distances
from repro.graph import (
    from_edges,
    random_integer_weights,
    random_real_weights,
    unit_weights,
)
from repro.parallel import Ledger
from repro.sssp import LazyBuckets, delta_stepping, dijkstra, suggest_delta

from conftest import random_connected_graph


class TestDijkstra:
    def test_unweighted_equals_bfs(self, small_random):
        ref, _ = bfs_distances(small_random, 3)
        np.testing.assert_allclose(dijkstra(small_random, 3), ref.astype(float))

    def test_weighted_hand_example(self):
        #    0 --1-- 1 --1-- 2
        #     \------5------/
        g = from_edges(3, [0, 1, 0], [1, 2, 2], weights=[1.0, 1.0, 5.0])
        np.testing.assert_allclose(dijkstra(g, 0), [0.0, 1.0, 2.0])

    def test_unreachable_inf(self):
        g = from_edges(3, [0], [1])
        d = dijkstra(g, 0)
        assert np.isinf(d[2])

    def test_bad_source(self, path10):
        with pytest.raises(ValueError):
            dijkstra(path10, -1)


class TestDeltaStepping:
    @pytest.mark.parametrize("delta", [0.5, 1.0, 4.0, 100.0])
    def test_matches_dijkstra_integer_weights(self, small_random, delta):
        g = random_integer_weights(small_random, 1, 16, seed=1)
        ref = dijkstra(g, 0)
        got, stats = delta_stepping(g, 0, delta)
        np.testing.assert_allclose(got, ref)
        assert stats.relaxations > 0

    def test_matches_dijkstra_real_weights(self, small_random):
        g = random_real_weights(small_random, seed=3)
        ref = dijkstra(g, 7)
        got, _ = delta_stepping(g, 7)
        np.testing.assert_allclose(got, ref)

    def test_unit_weights_equal_bfs(self, small_grid):
        g = unit_weights(small_grid)
        ref, _ = bfs_distances(small_grid, 0)
        got, stats = delta_stepping(g, 0, 1.0)
        np.testing.assert_allclose(got, ref.astype(float))
        # delta = 1 with unit weights degenerates to level-synchronous BFS
        assert stats.buckets_processed == int(ref.max()) + 1

    def test_unweighted_graph_unit_semantics(self, small_grid):
        ref, _ = bfs_distances(small_grid, 5)
        got, _ = delta_stepping(small_grid, 5, 1.0)
        np.testing.assert_allclose(got, ref.astype(float))

    def test_unreachable_inf(self):
        g = from_edges(4, [0, 2], [1, 3], weights=[1.0, 1.0])
        d, _ = delta_stepping(g, 0)
        assert np.isinf(d[2]) and np.isinf(d[3])

    def test_delta_affects_bucket_count(self, small_random):
        g = random_integer_weights(small_random, 1, 64, seed=2)
        _, s_small = delta_stepping(g, 0, 4.0)
        _, s_big = delta_stepping(g, 0, 1000.0)
        assert s_small.buckets_processed > s_big.buckets_processed

    def test_small_delta_more_rounds_fewer_wasted_relaxations(self, small_random):
        g = random_integer_weights(small_random, 1, 64, seed=2)
        _, s_small = delta_stepping(g, 0, 2.0)
        _, s_big = delta_stepping(g, 0, 1e9)
        # One giant bucket behaves like Bellman-Ford rounds: many repeats.
        assert s_big.relaxations >= s_small.relaxations * 0.5  # sanity
        assert s_big.inner_iterations < s_small.inner_iterations

    def test_ledger_costs_recorded(self, small_random):
        g = random_integer_weights(small_random, 1, 8, seed=0)
        led = Ledger()
        with led.phase("SSSP"):
            delta_stepping(g, 0, 4.0, ledger=led)
        tot = led.total().parallel
        assert tot.work > 0 and tot.regions > 0

    def test_invalid_args(self, small_grid):
        with pytest.raises(ValueError):
            delta_stepping(small_grid, 0, -1.0)
        with pytest.raises(ValueError):
            delta_stepping(small_grid, small_grid.n)

    def test_suggest_delta(self, small_random):
        assert suggest_delta(small_random) == 1.0
        g = random_integer_weights(small_random, 1, 100, seed=0)
        d = suggest_delta(g)
        assert 0 < d < 100

    def test_suggest_delta_zero_edge_weighted_graph(self):
        # Regression: `g.weights.max()` on an empty weight array raised
        # ValueError; edgeless weighted graphs must fall back to 1.0.
        g = from_edges(3, [], [], weights=[])
        assert suggest_delta(g) == 1.0

    def test_suggest_delta_non_finite_weights(self, small_random):
        # Regression: an inf max weight produced delta = inf, which
        # makes every edge "light" in bucket 0 and never advances.
        g = random_integer_weights(small_random, 1, 16, seed=2)
        w = g.weights.copy()
        w[0] = np.inf
        bad = g.with_weights(w)
        d = suggest_delta(bad)
        assert np.isfinite(d) and d == 1.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 40),
    extra=st.integers(0, 80),
    seed=st.integers(0, 9999),
    delta=st.sampled_from([0.3, 1.0, 7.0, 1e6]),
)
def test_delta_stepping_property(n, extra, seed, delta):
    """Property: Delta-stepping equals Dijkstra for any delta."""
    g = random_connected_graph(n, extra, seed)
    g = random_integer_weights(g, 1, 32, seed=seed)
    src = seed % n
    np.testing.assert_allclose(
        delta_stepping(g, src, delta)[0], dijkstra(g, src)
    )


class TestLazyBuckets:
    def test_pop_and_reinsertion(self):
        dist = np.array([0.0, 0.5, 1.5, np.inf])
        b = LazyBuckets(dist, 1.0)
        np.testing.assert_array_equal(b.pop(0), [0, 1])
        assert len(b.pop(0)) == 0  # already processed
        dist[1] = 0.2  # improvement -> active again
        np.testing.assert_array_equal(b.pop(0), [1])

    def test_next_nonempty(self):
        dist = np.array([np.inf, 3.7, np.inf])
        b = LazyBuckets(dist, 1.0)
        assert b.next_nonempty(0) == 3
        b.pop(3)
        assert b.next_nonempty(4) == -1

    def test_bucket_index(self):
        b = LazyBuckets(np.zeros(1), 2.0)
        np.testing.assert_array_equal(
            b.bucket_index(np.array([0.0, 1.9, 2.0, 5.0])), [0, 0, 1, 2]
        )

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            LazyBuckets(np.zeros(3), 0.0)
