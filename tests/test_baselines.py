"""Tests for the prior-implementation and exact-spectral baselines."""

import numpy as np
import pytest

from repro import parhde
from repro.baselines import (
    parhde_peak_bytes,
    prior_hde,
    prior_peak_bytes,
    spectral_layout,
)
from repro.parallel import BRIDGES_ESM, BRIDGES_RSM


class TestPriorHDE:
    def test_same_math_as_parhde(self, tiny_mesh):
        """Same seed -> same pivots -> numerically equivalent layout."""
        ours = parhde(tiny_mesh, s=10, seed=0)
        prior = prior_hde(tiny_mesh, s=10, seed=0)
        np.testing.assert_array_equal(ours.pivots, prior.pivots)
        np.testing.assert_allclose(ours.coords, prior.coords, atol=1e-8)

    def test_parhde_faster_on_low_diameter(self, small_random):
        ours = parhde(small_random, s=10, seed=0)
        prior = prior_hde(small_random, s=10, seed=0)
        for machine, p in ((BRIDGES_RSM, 28), (BRIDGES_ESM, 80)):
            assert ours.simulated_seconds(machine, p) < prior.simulated_seconds(
                machine, p
            )

    def test_prior_bfs_sequential(self, tiny_mesh):
        prior = prior_hde(tiny_mesh, s=5, seed=0)
        bfs = prior.ledger.phase_totals()["BFS"]
        assert bfs.sequential.work > 0
        assert bfs.sequential.regions == 0
        # The traversal itself does not shrink with more threads (only
        # the parallel farthest-vertex selection does).
        t1 = BRIDGES_RSM.time(bfs.sequential, 1)
        t28 = BRIDGES_RSM.time_totals(bfs, 28)
        assert t28 >= t1

    def test_prior_has_laplacian_build_step(self, tiny_mesh):
        prior = prior_hde(tiny_mesh, s=5, seed=0)
        subs = prior.ledger.subphase_totals("TripleProd")
        assert "build-L" in subs

    def test_speedup_grows_with_graph_size(self):
        """Table 3's key trend: larger graphs, larger ParHDE advantage."""
        from repro.graph import preprocess, uniform_random

        ratios = []
        for scale in (8, 11):
            g = preprocess(uniform_random(scale, degree=8, seed=0))
            t_prior = prior_hde(g, s=5, seed=0).simulated_seconds(BRIDGES_ESM, 80)
            t_ours = parhde(g, s=5, seed=0).simulated_seconds(BRIDGES_ESM, 80)
            ratios.append(t_prior / t_ours)
        assert ratios[1] > ratios[0]

    def test_peak_memory_roughly_double(self, small_random):
        prior = prior_peak_bytes(small_random, 10)
        ours = parhde_peak_bytes(small_random, 10)
        assert 1.5 < prior / ours < 3.5


class TestSpectralLayout:
    def test_matches_dense_eigenvectors(self, small_grid):
        res = spectral_layout(small_grid, 2, tol=1e-11, seed=0)
        # Dense reference via the lazy walk matrix.
        A = np.zeros((small_grid.n, small_grid.n))
        for v in range(small_grid.n):
            A[v, small_grid.neighbors(v)] = 1.0
        W = A / A.sum(axis=1, keepdims=True)
        evals = np.sort(np.linalg.eigvals(W).real)[::-1]
        np.testing.assert_allclose(
            np.sort(res.eigenvalues)[::-1], evals[1:3], atol=1e-5
        )

    def test_iterations_reported(self, small_grid):
        res = spectral_layout(small_grid, 2, tol=1e-8, seed=0)
        assert len(res.params["iterations"]) == 2
        assert all(i > 0 for i in res.params["iterations"])

    def test_warm_start_option(self, tiny_mesh):
        hde = parhde(tiny_mesh, s=10, seed=0)
        warm = spectral_layout(tiny_mesh, 2, tol=1e-6, seed=0, x0=hde.coords)
        cold = spectral_layout(tiny_mesh, 2, tol=1e-6, seed=0)
        assert sum(warm.params["iterations"]) < sum(cold.params["iterations"])
