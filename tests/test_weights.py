"""Tests for edge-weight assignment helpers."""

import numpy as np
import pytest

from repro.bfs import bfs_distances
from repro.graph import (
    random_integer_weights,
    random_real_weights,
    unit_weights,
)
from repro.sssp import dijkstra


def test_unit_weights_match_bfs(small_grid):
    g = unit_weights(small_grid)
    assert g.is_weighted
    assert np.all(g.weights == 1.0)
    d_bfs, _ = bfs_distances(small_grid, 0)
    d_w = dijkstra(g, 0)
    np.testing.assert_allclose(d_w, d_bfs.astype(float))


def test_integer_weights_range_and_symmetry(small_random):
    g = random_integer_weights(small_random, 1, 64, seed=1)
    g.validate()  # checks weight symmetry
    assert g.weights.min() >= 1
    assert g.weights.max() < 64
    assert np.all(g.weights == np.round(g.weights))


def test_integer_weights_deterministic(small_random):
    a = random_integer_weights(small_random, seed=5)
    b = random_integer_weights(small_random, seed=5)
    np.testing.assert_array_equal(a.weights, b.weights)


def test_real_weights_in_unit_interval(small_random):
    g = random_real_weights(small_random, seed=2)
    g.validate()
    assert g.weights.min() > 0
    assert g.weights.max() <= 1.0


def test_both_directions_same_weight(small_random):
    g = random_integer_weights(small_random, seed=3)
    u, v = g.edge_list()
    for a, b in zip(u[:50].tolist(), v[:50].tolist()):
        ia = np.searchsorted(g.neighbors(a), b)
        ib = np.searchsorted(g.neighbors(b), a)
        assert g.edge_weights_of(a)[ia] == g.edge_weights_of(b)[ib]


def test_bad_range_rejected(small_grid):
    with pytest.raises(ValueError):
        random_integer_weights(small_grid, 0, 5)
    with pytest.raises(ValueError):
        random_integer_weights(small_grid, 5, 5)
