"""Tests for the real thread-pool execution path."""

import numpy as np
import pytest

from repro.parallel import ParallelExecutor, split_range


class TestSplitRange:
    def test_covers_range_contiguously(self):
        for n, k in [(10, 3), (7, 7), (100, 8), (5, 20)]:
            parts = split_range(n, k)
            assert parts[0][0] == 0
            assert parts[-1][1] == n
            for (a, b), (c, d) in zip(parts, parts[1:]):
                assert b == c
                assert b > a

    def test_empty(self):
        assert split_range(0, 4) == [(0, 0)]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            split_range(-1, 2)


@pytest.mark.parametrize("threads", [1, 2, 4])
class TestExecutor:
    def test_parallel_for_writes_disjoint(self, threads):
        out = np.zeros(1000)

        def kernel(lo, hi):
            out[lo:hi] = np.arange(lo, hi)

        with ParallelExecutor(threads) as ex:
            ex.parallel_for(1000, kernel)
        np.testing.assert_array_equal(out, np.arange(1000.0))

    def test_dot(self, threads, rng):
        x = rng.standard_normal(10_001)
        y = rng.standard_normal(10_001)
        with ParallelExecutor(threads) as ex:
            assert ex.dot(x, y) == pytest.approx(float(np.dot(x, y)))

    def test_weighted_dot(self, threads, rng):
        x = rng.standard_normal(5000)
        w = rng.random(5000)
        y = rng.standard_normal(5000)
        with ParallelExecutor(threads) as ex:
            assert ex.weighted_dot(x, w, y) == pytest.approx(
                float(np.dot(x * w, y))
            )

    def test_axpy_scale(self, threads, rng):
        x = rng.standard_normal(3000)
        y = rng.standard_normal(3000)
        expected = y + 2.5 * x
        with ParallelExecutor(threads) as ex:
            ex.axpy(2.5, x, y)
            np.testing.assert_allclose(y, expected)
            ex.scale(0.5, y)
            np.testing.assert_allclose(y, expected * 0.5)

    def test_elementwise_min(self, threads, rng):
        a = rng.random(2000)
        b = rng.random(2000)
        expected = np.minimum(a, b)
        with ParallelExecutor(threads) as ex:
            ex.elementwise_min(a, b)
        np.testing.assert_array_equal(a, expected)

    def test_argmax_matches_numpy(self, threads, rng):
        x = rng.random(5000)
        with ParallelExecutor(threads) as ex:
            assert ex.argmax(x) == int(np.argmax(x))

    def test_argmax_tie_lowest_index(self, threads):
        x = np.zeros(100)
        x[[10, 60]] = 7.0
        with ParallelExecutor(threads) as ex:
            assert ex.argmax(x) == 10

    def test_parallel_reduce(self, threads):
        with ParallelExecutor(threads) as ex:
            total = ex.parallel_reduce(
                1000, lambda lo, hi: hi - lo, lambda a, b: a + b
            )
        assert total == 1000


class TestEdgeCases:
    def test_zero_length(self):
        with ParallelExecutor(2) as ex:
            ex.parallel_for(0, lambda lo, hi: 1 / 0)  # never called
            assert ex.parallel_map(0, lambda lo, hi: 1) == []

    def test_reduce_empty_rejected(self):
        with ParallelExecutor(1) as ex:
            with pytest.raises(ValueError):
                ex.parallel_reduce(0, lambda lo, hi: 0, lambda a, b: a)

    def test_dot_shape_mismatch(self):
        with ParallelExecutor(1) as ex:
            with pytest.raises(ValueError):
                ex.dot(np.ones(3), np.ones(4))

    def test_argmax_empty(self):
        with ParallelExecutor(1) as ex:
            with pytest.raises(ValueError):
                ex.argmax(np.zeros(0))

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestThreadedKernels:
    """The real parallel execution path must match the sequential kernels."""

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_threaded_spmm_matches(self, threads, small_random, rng):
        from repro.linalg import spmm
        from repro.parallel import threaded_spmm

        X = rng.standard_normal((small_random.n, 3))
        with ParallelExecutor(threads) as ex:
            got = threaded_spmm(small_random, X, ex)
        np.testing.assert_allclose(got, spmm(small_random, X))

    @pytest.mark.parametrize("threads", [1, 3])
    def test_threaded_spmm_vector_and_weighted(self, threads, small_grid, rng):
        from repro.graph import random_integer_weights
        from repro.linalg import spmm
        from repro.parallel import threaded_spmm

        g = random_integer_weights(small_grid, 1, 7, seed=0)
        x = rng.standard_normal(g.n)
        with ParallelExecutor(threads) as ex:
            got = threaded_spmm(g, x, ex)
        np.testing.assert_allclose(got, spmm(g, x))

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_threaded_laplacian_matches(self, threads, small_random, rng):
        from repro.linalg import laplacian_spmm
        from repro.parallel import threaded_laplacian_spmm

        X = rng.standard_normal((small_random.n, 2))
        with ParallelExecutor(threads) as ex:
            got = threaded_laplacian_spmm(small_random, X, ex)
        np.testing.assert_allclose(got, laplacian_spmm(small_random, X))

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_threaded_dortho_sweep(self, threads, rng):
        from repro.parallel import threaded_dortho_sweep

        n = 4000
        d = rng.integers(1, 6, size=n).astype(float)
        # Build a small D-orthonormal basis.
        S = rng.standard_normal((n, 3))
        for j in range(3):
            for i in range(j):
                S[:, j] -= np.dot(S[:, i] * d, S[:, j]) * S[:, i]
            S[:, j] /= np.sqrt(np.dot(S[:, j] * d, S[:, j]))
        v = rng.standard_normal(n)
        ref = v.copy()
        for j in range(3):
            ref -= np.dot(S[:, j] * d, ref) * S[:, j]
        with ParallelExecutor(threads) as ex:
            threaded_dortho_sweep(S, d, v, ex)
        np.testing.assert_allclose(v, ref, atol=1e-9)
        # Result is D-orthogonal to every basis column.
        np.testing.assert_allclose(S.T @ (d * v), 0.0, atol=1e-8)

    def test_threaded_spmm_shape_check(self, small_grid):
        from repro.parallel import threaded_spmm

        with ParallelExecutor(1) as ex:
            with pytest.raises(ValueError):
                threaded_spmm(small_grid, np.ones((3, 2)), ex)
