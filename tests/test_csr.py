"""Unit tests for the CSR graph type and edge-list construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, from_edges


class TestFromEdges:
    def test_simple_triangle(self):
        g = from_edges(3, [0, 1, 2], [1, 2, 0])
        assert g.n == 3
        assert g.m == 3
        assert g.nnz == 6
        np.testing.assert_array_equal(g.neighbors(0), [1, 2])
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])
        np.testing.assert_array_equal(g.neighbors(2), [0, 1])

    def test_self_loops_removed(self):
        g = from_edges(3, [0, 1, 1], [0, 1, 2])
        assert g.m == 1
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 0)

    def test_parallel_edges_merged(self):
        g = from_edges(4, [0, 1, 0, 3], [1, 0, 1, 2])
        assert g.m == 2
        assert g.has_edge(0, 1) and g.has_edge(2, 3)

    def test_parallel_weighted_edges_keep_max(self):
        g = from_edges(2, [0, 1, 0], [1, 0, 1], weights=[1.0, 5.0, 3.0])
        assert g.m == 1
        assert g.edge_weights_of(0)[0] == 5.0
        assert g.edge_weights_of(1)[0] == 5.0

    def test_direction_ignored(self):
        g1 = from_edges(3, [0, 1], [1, 2])
        g2 = from_edges(3, [1, 2], [0, 1])
        np.testing.assert_array_equal(g1.indptr, g2.indptr)
        np.testing.assert_array_equal(g1.indices, g2.indices)

    def test_empty_graph(self):
        g = from_edges(5, [], [])
        assert g.n == 5
        assert g.m == 0
        g.validate()

    def test_zero_vertices(self):
        g = from_edges(0, [], [])
        assert g.n == 0
        g.validate()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edges(3, [0], [3])
        with pytest.raises(ValueError, match="out of range"):
            from_edges(3, [-1], [0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            from_edges(3, [0, 1], [1])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            from_edges(2, [0], [1], weights=[0.0])
        with pytest.raises(ValueError, match="positive"):
            from_edges(2, [0], [1], weights=[-1.0])


class TestAccessors:
    def test_degrees(self, small_grid):
        deg = small_grid.degrees
        # Grid corners have degree 2, edges 3, interior 4.
        assert deg.min() == 2
        assert deg.max() == 4
        assert deg.sum() == small_grid.nnz

    def test_weighted_degrees_unweighted(self, small_grid):
        np.testing.assert_allclose(
            small_grid.weighted_degrees, small_grid.degrees.astype(float)
        )

    def test_weighted_degrees_weighted(self):
        g = from_edges(3, [0, 1], [1, 2], weights=[2.0, 3.0])
        np.testing.assert_allclose(g.weighted_degrees, [2.0, 5.0, 3.0])

    def test_edge_list_each_edge_once(self, small_grid):
        u, v = small_grid.edge_list()
        assert len(u) == small_grid.m
        assert np.all(u < v)

    def test_has_edge(self):
        g = from_edges(4, [0, 1], [1, 3])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(3, 1)
        assert not g.has_edge(0, 3)
        assert not g.has_edge(2, 0)

    def test_average_degree(self):
        g = from_edges(4, [0, 1, 2], [1, 2, 3])
        assert g.average_degree == pytest.approx(6 / 4)

    def test_with_weights_roundtrip(self, small_grid):
        w = np.ones(small_grid.nnz) * 2.5
        gw = small_grid.with_weights(w)
        assert gw.is_weighted
        gw.validate()
        assert not gw.unweighted().is_weighted

    def test_with_weights_validation(self, small_grid):
        with pytest.raises(ValueError, match="length"):
            small_grid.with_weights(np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            small_grid.with_weights(np.zeros(small_grid.nnz))


class TestValidate:
    def test_accepts_valid(self, small_grid, small_random, tiny_mesh):
        small_grid.validate()
        small_random.validate()
        tiny_mesh.validate()

    def test_rejects_self_loop(self):
        g = CSRGraph(
            np.array([0, 1, 2]), np.array([0, 1], dtype=np.int32)
        )
        with pytest.raises(ValueError, match="self loop"):
            g.validate()

    def test_rejects_asymmetry(self):
        g = CSRGraph(
            np.array([0, 1, 1]), np.array([1], dtype=np.int32)
        )
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_rejects_unsorted_rows(self):
        g = CSRGraph(
            np.array([0, 2, 3, 4]),
            np.array([2, 1, 0, 0], dtype=np.int32),
        )
        with pytest.raises(ValueError, match="increasing"):
            g.validate()

    def test_rejects_bad_indptr(self):
        g = CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))
        with pytest.raises(ValueError, match="start at 0"):
            g.validate()


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    edges=st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39)),
        max_size=120,
    ),
    seed=st.integers(0, 10),
)
def test_from_edges_always_valid(n, edges, seed):
    """Property: any in-range edge soup produces a valid simple graph."""
    edges = [(u % n, v % n) for u, v in edges]
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    g = from_edges(n, u, v)
    g.validate()
    # Every non-loop input edge must be present.
    for a, b in edges:
        if a != b:
            assert g.has_edge(a, b)
    # Edge count is bounded by distinct non-loop pairs.
    distinct = {(min(a, b), max(a, b)) for a, b in edges if a != b}
    assert g.m == len(distinct)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    seed=st.integers(0, 1000),
)
def test_weighted_symmetry_property(n, seed):
    rng = np.random.default_rng(seed)
    k = n * 2
    u = rng.integers(0, n, size=k)
    v = rng.integers(0, n, size=k)
    w = rng.random(k) + 0.1
    g = from_edges(n, u, v, weights=w)
    g.validate()  # includes weight symmetry check
