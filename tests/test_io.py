"""Round-trip tests for graph serialization formats."""

import numpy as np
import pytest

from repro.graph import (
    from_edges,
    load_npz,
    read_edge_list,
    read_matrix_market,
    read_metis,
    save_npz,
    write_edge_list,
    write_matrix_market,
    write_metis,
)


@pytest.fixture()
def weighted_graph():
    return from_edges(
        6,
        [0, 1, 2, 3, 4, 0],
        [1, 2, 3, 4, 5, 5],
        weights=[1.5, 2.0, 0.25, 4.0, 1.0, 3.0],
        name="wg",
    )


def _assert_same(a, b, check_weights=True):
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    if check_weights:
        if a.weights is None:
            assert b.weights is None
        else:
            np.testing.assert_allclose(a.weights, b.weights)


class TestEdgeList:
    def test_roundtrip_unweighted(self, small_grid, tmp_path):
        p = tmp_path / "g.txt"
        write_edge_list(small_grid, p)
        _assert_same(small_grid, read_edge_list(p))

    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        p = tmp_path / "g.txt"
        write_edge_list(weighted_graph, p)
        _assert_same(weighted_graph, read_edge_list(p))

    def test_comments_and_blank_lines(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# comment\n\n% other\n0 1\n1 2\n")
        g = read_edge_list(p)
        assert g.n == 3 and g.m == 2

    def test_malformed_line(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.txt"
        p.write_text("# nothing\n")
        assert read_edge_list(p).n == 0


class TestMatrixMarket:
    def test_roundtrip_pattern(self, small_grid, tmp_path):
        p = tmp_path / "g.mtx"
        write_matrix_market(small_grid, p)
        _assert_same(small_grid, read_matrix_market(p))

    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        p = tmp_path / "g.mtx"
        write_matrix_market(weighted_graph, p)
        _assert_same(weighted_graph, read_matrix_market(p))

    def test_general_symmetry_and_negatives(self, tmp_path):
        p = tmp_path / "g.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 4\n1 2 1.0\n2 1 1.0\n2 3 -2.0\n3 3 5.0\n"
        )
        g = read_matrix_market(p)
        # (1,2) duplicated directions merge; |−2| kept; diagonal dropped.
        assert g.m == 2
        assert g.has_edge(0, 1)
        i = np.searchsorted(g.neighbors(1), 2)
        assert g.edge_weights_of(1)[i] == 2.0

    def test_rejects_non_mm(self, tmp_path):
        p = tmp_path / "g.mtx"
        p.write_text("hello\n")
        with pytest.raises(ValueError, match="Matrix Market"):
            read_matrix_market(p)

    def test_rejects_dense(self, tmp_path):
        p = tmp_path / "g.mtx"
        p.write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(p)


class TestMetis:
    def test_roundtrip_unweighted(self, small_grid, tmp_path):
        p = tmp_path / "g.graph"
        write_metis(small_grid, p)
        _assert_same(small_grid, read_metis(p))

    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        p = tmp_path / "g.graph"
        write_metis(weighted_graph, p)
        _assert_same(weighted_graph, read_metis(p))


class TestNpz:
    def test_roundtrip(self, small_random, tmp_path):
        p = tmp_path / "g.npz"
        save_npz(small_random.with_name("roundtrip"), p)
        g = load_npz(p)
        _assert_same(small_random, g)
        assert g.name == "roundtrip"

    def test_roundtrip_weighted(self, weighted_graph, tmp_path):
        p = tmp_path / "g.npz"
        save_npz(weighted_graph, p)
        _assert_same(weighted_graph, load_npz(p))


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(2, 25),
    k=st.integers(1, 50),
    seed=st.integers(0, 999),
    weighted=st.booleans(),
    fmt=st.sampled_from(["edgelist", "mm", "metis", "npz"]),
)
def test_io_roundtrip_property(tmp_path_factory, n, k, seed, weighted, fmt):
    """Property: every format round-trips arbitrary simple graphs."""
    import numpy as np

    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=k)
    v = rng.integers(0, n, size=k)
    w = rng.integers(1, 9, size=k).astype(float) if weighted else None
    g = from_edges(n, u, v, w)
    path = tmp_path_factory.mktemp("io") / f"g-{fmt}"
    if fmt == "edgelist":
        write_edge_list(g, path)
        back = read_edge_list(path)
        back_n = back.n  # edge lists cannot express trailing isolated ids
        assert back_n <= g.n
        if g.m:
            u2, v2 = g.edge_list()
            for a, b in zip(u2.tolist(), v2.tolist()):
                assert back.has_edge(a, b)
        return
    if fmt == "mm":
        write_matrix_market(g, path)
        back = read_matrix_market(path)
    elif fmt == "metis":
        write_metis(g, path)
        back = read_metis(path)
    else:
        write_npz = save_npz
        write_npz(g, path.with_suffix(".npz"))
        back = load_npz(path.with_suffix(".npz"))
    np.testing.assert_array_equal(back.indptr, g.indptr)
    np.testing.assert_array_equal(back.indices, g.indices)
    if weighted and g.m:
        np.testing.assert_allclose(back.weights, g.weights)
