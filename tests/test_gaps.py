"""Tests for adjacency-gap analysis and the locality model (Figure 2)."""

import numpy as np
import pytest

from repro.graph import (
    adjacency_gaps,
    banded,
    fibonacci_edges,
    fibonacci_histogram,
    from_edges,
    grid2d,
    miss_rate,
    path_graph,
    preprocess,
    shuffle_vertices,
    uniform_random,
)


class TestAdjacencyGaps:
    def test_count_matches_paper_formula(self, small_grid):
        # sum of counts = 2m - n for graphs without isolated/deg-0 vertices
        gaps = adjacency_gaps(small_grid)
        assert len(gaps) == small_grid.nnz - small_grid.n

    def test_path_graph_gap_two(self):
        # The paper's ideal example: a linear chain has gap 2, n-2 times.
        g = path_graph(50)
        gaps = adjacency_gaps(g)
        assert len(gaps) == 48
        assert np.all(gaps == 2)

    def test_gaps_positive(self, small_random):
        gaps = adjacency_gaps(small_random)
        assert np.all(gaps > 0)

    def test_isolated_vertices_skipped(self):
        g = from_edges(6, [1, 1], [3, 5])  # vertices 0,2,4 isolated
        gaps = adjacency_gaps(g)
        assert len(gaps) == 1  # only row 1 has 2 neighbors: gap 5-3
        assert gaps[0] == 2

    def test_empty(self):
        assert len(adjacency_gaps(from_edges(3, [], []))) == 0


class TestFibonacciBinning:
    def test_edges_are_fibonacci(self):
        edges = fibonacci_edges(100)
        assert edges.tolist()[:8] == [0, 1, 2, 3, 5, 8, 13, 21]
        assert edges[-1] > 100

    def test_histogram_total(self, small_random):
        hist = fibonacci_histogram(small_random)
        assert hist.total == len(adjacency_gaps(small_random))

    def test_series_and_format(self, small_grid):
        hist = fibonacci_histogram(small_grid)
        series = hist.series()
        assert all(c > 0 for _, c in series)
        assert sum(c for _, c in series) == hist.total
        assert "count" in hist.format()

    def test_grid_concentrated_in_two_bins(self):
        g = grid2d(20, 30)
        hist = fibonacci_histogram(g)
        # Gaps are mostly {1..2*cols}; only a few distinct values exist.
        assert len(hist.series()) <= 6


class TestMissRate:
    def test_bounds(self, small_grid, small_random):
        for g in (small_grid, small_random):
            assert 0.0 <= miss_rate(g) <= 1.0

    def test_ordering_banded_vs_random(self):
        local = banded(2000, offsets=(1, 2, 3))
        rand = preprocess(uniform_random(11, degree=8, seed=0))
        assert miss_rate(local) < 0.2
        assert miss_rate(rand) > 0.5
        assert miss_rate(local) < miss_rate(rand)

    def test_shuffle_destroys_locality(self):
        g = grid2d(40, 40)
        gs = shuffle_vertices(g, seed=1)
        assert miss_rate(gs) > 3 * miss_rate(g)

    def test_empty_graph(self):
        assert miss_rate(from_edges(3, [], [])) == 0.0

    def test_explicit_llc_window(self):
        g = grid2d(30, 30)
        # A window covering the whole vertex range -> everything mid/near.
        generous = miss_rate(g, llc_bytes=8.0 * g.n * 8)
        tight = miss_rate(g, llc_bytes=8.0)
        assert generous <= tight
