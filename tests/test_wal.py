"""WAL durability tests: framing, recovery, and crash-consistent replay.

Three ISSUE-mandated properties, checked with hypothesis over random
record streams and byte-level damage:

1. **replay is idempotent** — replaying a journal twice yields exactly
   the state of replaying it once (log level: identical record
   sequences; engine level: bitwise-identical layouts);
2. **any byte-level truncation of a valid log replays a prefix** —
   never garbage, never an error, never records out of order;
3. **snapshot + compaction preserve replayed state bitwise** — the
   snapshot payload plus the surviving post-floor records reconstruct
   the full pre-compaction sequence.

Plus the concrete crash-shaped cases: torn-tail quarantine, journal
-before-apply (a failed append mutates nothing), engine and stream
restarts bitwise-equal to an uninterrupted control, and the cluster
monitor's capped exponential respawn backoff.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import grid2d
from repro.service import (
    LayoutEngine,
    LayoutRequest,
    ServiceError,
    UpdateRequest,
)
from repro.wal import (
    WriteAheadLog,
    crc32c,
    edge_diff,
    encode_record,
    scan_records,
)
from repro.wal.records import HEADER


def _loader(name, scale, seed):
    if name == "grid":
        return grid2d(8, 8)
    raise KeyError(name)


def _engine(tmp_path, **kwargs):
    kwargs.setdefault("graph_loader", _loader)
    kwargs.setdefault("workers", 1)
    return LayoutEngine(wal_dir=str(tmp_path / "wal"), **kwargs)


def _layout(engine, **over):
    req = LayoutRequest(graph="grid", scale="tiny", s=6, **over)
    resp = engine.submit(req)
    return resp.fingerprint, np.asarray(resp.result.coords)


# ---------------------------------------------------------------------------
# record framing


class TestRecords:
    def test_crc32c_known_answer(self):
        # The canonical Castagnoli check vector (RFC 3720 appendix).
        assert crc32c(b"123456789") == 0xE3069283

    def test_roundtrip(self):
        payloads = [f"record-{i}".encode() * (i + 1) for i in range(20)]
        blob = b"".join(encode_record(p) for p in payloads)
        scan = scan_records(blob)
        assert scan.payloads == payloads
        assert scan.valid_end == len(blob)
        assert not scan.corrupt

    def test_flipped_byte_stops_scan(self):
        payloads = [b"alpha", b"beta", b"gamma"]
        blob = bytearray(b"".join(encode_record(p) for p in payloads))
        second = len(encode_record(b"alpha"))
        blob[second + HEADER.size + 1] ^= 0xFF  # damage record 2's body
        scan = scan_records(bytes(blob))
        assert scan.payloads == [b"alpha"]
        assert scan.valid_end == second
        assert scan.corrupt


# ---------------------------------------------------------------------------
# hypothesis properties


_records = st.lists(
    st.fixed_dictionaries(
        {"type": st.sampled_from(["update", "publish", "register"]),
         "payload": st.text(max_size=40)}
    ),
    min_size=1,
    max_size=12,
)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(records=_records)
    def test_replay_is_idempotent(self, records, tmp_path_factory):
        root = tmp_path_factory.mktemp("wal")
        log = WriteAheadLog(str(root), fsync="off")
        for rec in records:
            log.append(dict(rec))
        log.close()
        # Replaying twice (same handle) and recovering twice (two
        # "process restarts") must all yield the identical sequence.
        reopened = WriteAheadLog(str(root), fsync="off")
        first = reopened.replay()
        assert reopened.replay().records == first.records
        reopened.close()
        again = WriteAheadLog(str(root), fsync="off")
        assert again.replay().records == first.records
        again.close()
        assert [
            {k: v for k, v in r.items() if k != "lsn"}
            for r in first.records
        ] == records

    @settings(max_examples=25, deadline=None)
    @given(records=_records, data=st.data())
    def test_truncation_replays_a_prefix(self, records, data):
        payloads = [
            json.dumps(rec, sort_keys=True).encode() for rec in records
        ]
        blob = b"".join(encode_record(p) for p in payloads)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        scan = scan_records(blob[:cut])
        assert scan.payloads == payloads[: len(scan.payloads)]
        assert scan.valid_end <= cut

    @settings(max_examples=25, deadline=None)
    @given(records=_records, data=st.data())
    def test_snapshot_compact_preserves_state(
        self, records, data, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("wal")
        # Tiny segments force rotation so compaction has files to drop.
        log = WriteAheadLog(str(root), fsync="off", segment_bytes=256)
        lsns = [log.append(dict(rec)) for rec in records]
        floor_idx = data.draw(
            st.integers(min_value=0, max_value=len(records) - 1)
        )
        # The snapshot captures everything up to and including floor_idx.
        log.snapshot(
            {"upto": records[: floor_idx + 1]}, floor=lsns[floor_idx]
        )
        log.close()
        replay = WriteAheadLog(str(root), fsync="off").replay()
        assert replay.snapshot == {"upto": records[: floor_idx + 1]}
        tail = [
            {k: v for k, v in r.items() if k != "lsn"}
            for r in replay.records
            if r["lsn"] > replay.floor
        ]
        # snapshot payload + surviving tail == the full original sequence
        assert replay.snapshot["upto"] + tail == records


# ---------------------------------------------------------------------------
# the log itself


class TestWriteAheadLog:
    def test_rotation_and_replay(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), fsync="off", segment_bytes=128)
        for i in range(40):
            log.append({"type": "update", "i": i})
        assert log.stats()["rotations"] > 0
        log.close()
        replay = WriteAheadLog(str(tmp_path), fsync="off").replay()
        assert [r["i"] for r in replay.records] == list(range(40))

    def test_corrupt_tail_is_quarantined_not_fatal(self, tmp_path):
        log = WriteAheadLog(str(tmp_path), fsync="off")
        for i in range(5):
            log.append({"i": i})
        log.close()
        segment = sorted(tmp_path.glob("wal-*.log"))[-1]
        with open(segment, "ab") as fh:
            fh.write(b"\x7fgarbage-torn-tail")
        reopened = WriteAheadLog(str(tmp_path), fsync="off")
        assert reopened.stats()["corrupt_records"] >= 1
        assert [r["i"] for r in reopened.replay().records] == list(range(5))
        quarantine = tmp_path / "quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())
        # The log keeps accepting appends after recovery, and the next
        # recovery sees them.
        reopened.append({"i": 5})
        reopened.close()
        final = WriteAheadLog(str(tmp_path), fsync="off").replay()
        assert [r["i"] for r in final.records] == list(range(6))

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), fsync="sometimes")
        always = WriteAheadLog(str(tmp_path / "a"), fsync="always")
        always.append({"x": 1})
        assert always.stats()["fsyncs"] >= 1
        always.close()


class TestEdgeDiff:
    def test_insert_delete_roundtrip(self):
        from repro.stream import DynamicGraph, edge_delta

        base = grid2d(6, 6)
        dyn = DynamicGraph(base)
        dyn.apply(edge_delta(inserts=[(0, 20), (1, 30)], deletes=[(0, 1)]))
        inserts, deletes = edge_diff(base, dyn.to_csr())
        assert sorted(tuple(r[:2]) for r in inserts) == [(0, 20), (1, 30)]
        assert sorted(map(tuple, deletes)) == [(0, 1)]
        # Applying the diff to a fresh base reproduces the edited graph.
        redo = DynamicGraph(grid2d(6, 6))
        redo.apply(edge_delta(inserts=inserts, deletes=deletes))
        assert np.array_equal(redo.to_csr().indptr, dyn.to_csr().indptr)
        assert np.array_equal(redo.to_csr().indices, dyn.to_csr().indices)


# ---------------------------------------------------------------------------
# engine integration


class TestEngineReplay:
    UPDATES = [
        {"inserts": ((0, 9), (2, 17))},
        {"deletes": ((0, 1),)},
        {"inserts": ((3, 40),), "pins": {5: (0.25, -0.5)}},
    ]

    def _apply_all(self, engine):
        for body in self.UPDATES:
            engine.update(UpdateRequest(graph="grid", scale="tiny", **body))

    def test_restart_is_bitwise_identical(self, tmp_path):
        with _engine(tmp_path) as eng:
            self._apply_all(eng)
            fp, coords = _layout(eng)
            epoch = eng.stats()["wal"]["last_lsn"]
            assert epoch > 0
        with _engine(tmp_path) as replayed:
            assert replayed.stats()["wal"]["replays"] == 1
            fp2, coords2 = _layout(replayed)
        assert fp2 == fp
        assert np.array_equal(coords2, coords)
        # Control: an uninterrupted engine given the same updates agrees.
        with LayoutEngine(graph_loader=_loader, workers=1) as control:
            self._apply_all(control)
            fp3, coords3 = _layout(control)
        assert fp3 == fp
        assert np.array_equal(coords3, coords)

    def test_replay_twice_equals_once(self, tmp_path):
        with _engine(tmp_path) as eng:
            self._apply_all(eng)
            fp, coords = _layout(eng)
        with _engine(tmp_path):
            pass  # replay #1, journal untouched (no new updates)
        with _engine(tmp_path) as again:
            fp2, coords2 = _layout(again)
        assert (fp2, np.array_equal(coords2, coords)) == (fp, True)

    def test_snapshot_compaction_then_restart(self, tmp_path):
        with _engine(tmp_path, wal_snapshot_every=2) as eng:
            self._apply_all(eng)
            assert eng.stats()["wal"]["snapshots"] >= 1
            fp, coords = _layout(eng)
        with _engine(tmp_path) as replayed:
            fp2, coords2 = _layout(replayed)
            wal = replayed.stats()["wal"]
        assert fp2 == fp and np.array_equal(coords2, coords)
        # Compaction dropped journal work: fewer records replayed than
        # were ever appended.
        assert wal["replayed_records"] < wal["last_lsn"]

    def test_torn_tail_recovers_valid_prefix(self, tmp_path):
        with _engine(tmp_path) as eng:
            self._apply_all(eng)
        segment = sorted((tmp_path / "wal").glob("wal-*.log"))[-1]
        with open(segment, "r+b") as fh:
            fh.seek(-3, os.SEEK_END)
            fh.write(b"\xff\xff\xff")
        with _engine(tmp_path) as replayed:
            wal = replayed.stats()["wal"]
            assert wal["corrupt_records"] >= 1
            fp, coords = _layout(replayed)
        # The damaged record was the last update; the prefix (first two
        # updates) must replay exactly.
        with LayoutEngine(graph_loader=_loader, workers=1) as control:
            for body in self.UPDATES[:-1]:
                control.update(
                    UpdateRequest(graph="grid", scale="tiny", **body)
                )
            fp2, coords2 = _layout(control)
        assert fp2 == fp
        assert np.array_equal(coords2, coords)

    def test_failed_append_mutates_nothing(self, tmp_path, monkeypatch):
        with _engine(tmp_path) as eng:
            eng.update(
                UpdateRequest(graph="grid", scale="tiny", inserts=((0, 9),))
            )
            before = _layout(eng)

            def broken_append(record):
                raise OSError("disk full")

            monkeypatch.setattr(eng._wal, "append", broken_append)
            with pytest.raises(ServiceError, match="write-ahead log"):
                eng.update(
                    UpdateRequest(
                        graph="grid", scale="tiny", inserts=((1, 30),)
                    )
                )
            # Journal-before-apply: the rejected update changed nothing.
            assert _layout(eng)[0] == before[0]

    def test_publish_epoch_survives_restart(self, tmp_path):
        with _engine(tmp_path) as eng:
            eng.update(
                UpdateRequest(graph="grid", scale="tiny", inserts=((0, 9),))
            )
            resp = eng.submit(LayoutRequest(graph="grid", scale="tiny", s=6))
            fp_before = resp.fingerprint
            # An async refinement publication bumps the epoch — that bump
            # must be journaled like any other mutation.
            assert (
                eng.publish_layout(
                    "grid", "tiny", 0, "parhde", {"s": 6}, resp.result
                )
                is not None
            )
            fp_after, _ = _layout(eng)
            assert fp_after != fp_before
        with _engine(tmp_path) as replayed:
            assert _layout(replayed)[0] == fp_after


# ---------------------------------------------------------------------------
# stream sessions


class TestStreamWal:
    def _deltas(self):
        from repro.stream import edge_delta

        return [
            edge_delta(inserts=[(0, 20)]),
            edge_delta(inserts=[(1, 30)], deletes=[(0, 1)]),
            edge_delta(deletes=[(0, 20)]),
        ]

    def test_journaled_session_matches_control(self, tmp_path):
        from repro.stream import StreamSession

        g = grid2d(8, 8)
        control = StreamSession(g, 6, seed=1)
        session = StreamSession(g, 6, seed=1, wal=str(tmp_path / "w"))
        for delta in self._deltas():
            control.update(delta)
            session.update(delta)
        assert np.array_equal(
            session.snapshot_result().coords, control.snapshot_result().coords
        )
        session.close()

    def test_resume_wal_bitwise(self, tmp_path):
        from repro.stream import StreamSession

        g = grid2d(8, 8)
        session = StreamSession(g, 6, seed=1, wal=str(tmp_path / "w"))
        for delta in self._deltas():
            session.update(delta)
        coords = np.array(session.snapshot_result().coords)
        epoch = session.epoch
        session.close()
        resumed = StreamSession.resume_wal(grid2d(8, 8), str(tmp_path / "w"))
        assert resumed.epoch == epoch
        assert np.array_equal(resumed.snapshot_result().coords, coords)
        assert resumed.wal_stats()["replays"] == 1
        resumed.close()

    def test_autosave_warns_once_and_counts(self, tmp_path, monkeypatch, caplog):
        from repro.core import serialize
        from repro.stream import StreamSession, edge_delta

        def broken(result, path):
            raise OSError("disk full")

        monkeypatch.setattr(serialize, "save_layout", broken)
        with caplog.at_level("WARNING", logger="repro.stream.session"):
            session = StreamSession(
                grid2d(8, 8), 6, seed=1,
                autosave=str(tmp_path / "auto.npz"),
            )
            for i in range(3):
                session.update(edge_delta(inserts=[(0, 20 + i)]))
        assert session.stats["autosave_failures"] >= 3
        warnings = [
            r for r in caplog.records if "autosave" in r.getMessage()
        ]
        assert len(warnings) == 1  # log-once; the counter does the rest


# ---------------------------------------------------------------------------
# cluster respawn backoff


class TestRespawnBackoff:
    def test_failed_restarts_back_off_exponentially(self, monkeypatch):
        import time as _time

        from repro.cluster import ClusterRouter

        router = ClusterRouter(
            2, restart_backoff=0.5, restart_backoff_cap=2.0
        )
        worker = router._workers[0]
        monkeypatch.setattr(router, "_spawn", lambda w: None)
        monkeypatch.setattr(
            router,
            "_await_ready",
            lambda w, ready: setattr(w, "state", "dead"),
        )
        delays = []
        for _ in range(4):
            t0 = _time.monotonic()
            router._respawn(worker)
            delays.append(worker.next_restart_at - t0)
        assert worker.restart_failures == 4
        # 0.5, 1.0, 2.0, then capped at 2.0 (cap < 0.5 * 2**3).
        for got, want in zip(delays, (0.5, 1.0, 2.0, 2.0)):
            assert got == pytest.approx(want, abs=0.05)
        # The monitor's gate: no retry before next_restart_at.
        assert _time.monotonic() < worker.next_restart_at

        # A successful restart resets the streak and the gate.
        monkeypatch.setattr(
            router,
            "_await_ready",
            lambda w, ready: setattr(w, "state", "up"),
        )
        router._respawn(worker)
        assert worker.restart_failures == 0
        assert worker.next_restart_at == 0.0
