"""Tests for the layout-serving subsystem (:mod:`repro.service`)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import load_layout, parhde, save_layout
from repro.core.result import LayoutResult
from repro.graph import from_edges, grid2d
from repro.parallel import PoolSaturated, TaskPool
from repro.service import (
    BadRequest,
    LayoutCache,
    LayoutEngine,
    LayoutRequest,
    Overloaded,
    RequestTimeout,
    ValidationFailed,
    canonical_params,
    graph_digest,
    layout_fingerprint,
    layout_nbytes,
    make_server,
)


def _fake_layout(n: int = 16, fill: float = 1.0) -> LayoutResult:
    """A small synthetic LayoutResult with a predictable byte size."""
    return LayoutResult(
        coords=np.full((n, 2), fill),
        algorithm="fake",
        B=np.zeros((n, 2)),
        S=np.zeros((n, 2)),
        eigenvalues=np.zeros(2),
        pivots=np.arange(2, dtype=np.int64),
        params={"s": 2, "seed": 0},
    )


# ---------------------------------------------------------------------------
# fingerprint
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_construction_order_invariance(self):
        u = np.array([0, 1, 2, 3, 0])
        v = np.array([1, 2, 3, 0, 2])
        a = from_edges(5, u, v)
        # Same edges: reversed order, flipped direction, duplicates.
        b = from_edges(5, np.r_[v[::-1], u], np.r_[u[::-1], v])
        assert graph_digest(a) == graph_digest(b)

    def test_structure_sensitivity(self):
        a = grid2d(5, 5)
        b = grid2d(5, 6)
        assert graph_digest(a) != graph_digest(b)

    def test_name_and_dtype_independence(self):
        g = grid2d(4, 4)
        renamed = g.with_name("other")
        assert graph_digest(g) == graph_digest(renamed)

    def test_weights_change_digest(self):
        g = grid2d(4, 4)
        w = g.with_weights(np.full(g.nnz, 2.0))
        assert graph_digest(g) != graph_digest(w)

    def test_param_change_changes_fingerprint(self):
        g = grid2d(5, 5)
        base = layout_fingerprint(g, "parhde", {"s": 8, "seed": 0})
        assert base == layout_fingerprint(g, "parhde", {"seed": 0, "s": 8})
        assert base != layout_fingerprint(g, "parhde", {"s": 9, "seed": 0})
        assert base != layout_fingerprint(g, "phde", {"s": 8, "seed": 0})

    def test_numpy_scalars_normalize(self):
        assert canonical_params({"s": np.int64(8), "tol": np.float64(0.5)}) == (
            canonical_params({"s": 8, "tol": 0.5})
        )
        g = grid2d(4, 4)
        assert layout_fingerprint(g, "parhde", {"s": np.int64(8)}) == (
            layout_fingerprint(g, "parhde", {"s": 8})
        )


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


class TestLayoutCache:
    def test_lru_byte_budget_eviction(self):
        one = layout_nbytes(_fake_layout())
        cache = LayoutCache(max_bytes=2 * one)
        cache.put("a", _fake_layout(fill=1))
        cache.put("b", _fake_layout(fill=2))
        assert len(cache) == 2
        cache.put("c", _fake_layout(fill=3))  # evicts "a" (LRU)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("b") is not None and cache.get("c") is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["bytes"] <= cache.max_bytes

    def test_lru_order_updates_on_get(self):
        one = layout_nbytes(_fake_layout())
        cache = LayoutCache(max_bytes=2 * one)
        cache.put("a", _fake_layout())
        cache.put("b", _fake_layout())
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", _fake_layout())
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_oversize_entry_not_cached_in_memory(self):
        cache = LayoutCache(max_bytes=16)
        cache.put("big", _fake_layout(n=64))
        assert len(cache) == 0

    def test_disk_tier_spill_and_promote(self, tmp_path, tiny_mesh):
        res = parhde(tiny_mesh, s=6, seed=0)
        one = layout_nbytes(res)
        cache = LayoutCache(max_bytes=one + 1, disk_dir=tmp_path / "tier2")
        cache.put("x", res)
        cache.put("y", res)  # evicts "x" from memory, spills to disk
        hit = cache.get("x")
        assert hit is not None
        result, tier = hit
        assert tier == "disk"
        np.testing.assert_array_equal(result.coords, res.coords)
        # Promoted back into memory: second read is a memory hit.
        _, tier2 = cache.get("x")
        assert tier2 == "memory"
        stats = cache.stats()
        assert stats["disk_hits"] == 1 and stats["memory_hits"] >= 1

    def test_disk_tier_survives_new_cache_instance(self, tmp_path, tiny_mesh):
        res = parhde(tiny_mesh, s=6, seed=0)
        cache = LayoutCache(max_bytes=10**9, disk_dir=tmp_path / "tier2")
        cache.put("warm", res)
        fresh = LayoutCache(max_bytes=10**9, disk_dir=tmp_path / "tier2")
        hit = fresh.get("warm")
        assert hit is not None and hit[1] == "disk"

    def test_miss_accounting(self):
        cache = LayoutCache(max_bytes=1024)
        assert cache.get("nope") is None
        assert cache.stats()["misses"] == 1

    def test_failed_spill_keeps_entry_in_memory(self, tmp_path):
        # A disk tier rooted under a regular file can never be created,
        # so every spill attempt fails (works even when running as root,
        # unlike chmod-based unwritable directories).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        one = layout_nbytes(_fake_layout())
        cache = LayoutCache(max_bytes=2 * one, disk_dir=blocker / "tier2")
        cache.put("a", _fake_layout(fill=1))
        cache.put("b", _fake_layout(fill=2))
        cache.put("c", _fake_layout(fill=3))  # would evict+spill "a"
        # The spill failed, so "a" must still be served from memory
        # rather than silently vanishing from both tiers.
        hit = cache.get("a")
        assert hit is not None and hit[1] == "memory"
        stats = cache.stats()
        assert stats["disk_errors"] >= 1
        assert stats["evictions"] == 0
        # Memory runs over budget until a spill succeeds — by design.
        assert stats["bytes"] > cache.max_bytes


# ---------------------------------------------------------------------------
# task pool
# ---------------------------------------------------------------------------


class TestTaskPool:
    def test_runs_tasks(self):
        with TaskPool(2) as pool:
            futures = [pool.submit(lambda i=i: i * i) for i in range(8)]
            assert [f.result() for f in futures] == [i * i for i in range(8)]

    def test_saturation(self):
        release = threading.Event()
        with TaskPool(1, queue_limit=1) as pool:
            pool.submit(release.wait)  # occupies the worker
            pool.submit(release.wait)  # fills the queue
            with pytest.raises(PoolSaturated):
                pool.submit(release.wait)
            release.set()


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


def _tiny_loader(name, scale, seed):
    if name == "grid":
        return grid2d(8 + seed, 8)
    raise KeyError(name)


class TestLayoutEngine:
    def test_cache_hit_roundtrip(self):
        with LayoutEngine(graph_loader=_tiny_loader, workers=2) as eng:
            req = LayoutRequest(graph="grid", s=6)
            cold = eng.submit(req)
            warm = eng.submit(req)
            assert cold.status == "computed"
            assert warm.status == "memory-hit"
            assert warm.fingerprint == cold.fingerprint
            np.testing.assert_array_equal(
                warm.result.coords, cold.result.coords
            )
            snap = eng.stats()
            assert snap["counters"]["cache_hits"] == 1
            assert snap["cache"]["hits"] == 1

    def test_unknown_graph_and_algo(self):
        with LayoutEngine(graph_loader=_tiny_loader) as eng:
            with pytest.raises(BadRequest):
                eng.submit(LayoutRequest(graph="nope"))
            with pytest.raises(BadRequest):
                eng.submit(LayoutRequest(graph="grid", algorithm="nope"))
            with pytest.raises(BadRequest):
                eng.submit(LayoutRequest(graph="grid", s=10**9))
            with pytest.raises(BadRequest):
                eng.submit(
                    LayoutRequest(graph="grid", params={"not_a_param": 1})
                )

    def test_single_flight_dedup(self):
        calls = []
        gate = threading.Event()

        def slow_algo(g, s, **kwargs):
            calls.append(1)
            gate.wait(5)
            return _fake_layout(g.n)

        with LayoutEngine(
            graph_loader=_tiny_loader,
            algorithms={"slow": slow_algo},
            workers=2,
            queue_limit=32,
            timeout=10,
        ) as eng:
            results: list = [None] * 8
            errors: list = []

            def worker(i):
                try:
                    results[i] = eng.submit(
                        LayoutRequest(graph="grid", algorithm="slow", s=4)
                    )
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            # Wait until every thread has either joined the flight or is
            # the leader, then open the gate.
            deadline = time.time() + 5
            while eng.inflight < 1 and time.time() < deadline:
                time.sleep(0.005)
            time.sleep(0.05)
            gate.set()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            assert sum(calls) == 1, "single-flight must dedupe the compute"
            statuses = {r.status for r in results}
            assert statuses <= {"computed", "coalesced", "memory-hit"}
            assert sum(r.status == "computed" for r in results) == 1

    def test_admission_control_burst(self):
        """64-request burst, 2 workers, queue depth 8: structured rejects."""
        release = threading.Event()

        def blocking_algo(g, s, **kwargs):
            release.wait(10)
            return _fake_layout(g.n)

        with LayoutEngine(
            graph_loader=_tiny_loader,
            algorithms={"block": blocking_algo},
            workers=2,
            queue_limit=8,
            timeout=20,
        ) as eng:
            outcomes: list = [None] * 64

            def worker(i):
                try:
                    # Distinct seeds -> distinct fingerprints -> no dedup.
                    outcomes[i] = eng.submit(
                        LayoutRequest(
                            graph="grid", algorithm="block", s=4, seed=i % 32
                        )
                    ).status
                except Overloaded:
                    outcomes[i] = "overloaded"

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(64)
            ]
            for t in threads:
                t.start()
            time.sleep(0.3)
            release.set()
            for t in threads:
                t.join(timeout=30)
            assert None not in outcomes, "every request must resolve"
            rejected = outcomes.count("overloaded")
            assert rejected > 0, "burst must trip admission control"
            served = len(outcomes) - rejected
            assert served >= eng._pool.workers
            assert eng.stats()["counters"]["rejected"] == rejected

    def test_timeout_then_cached_retry(self):
        started = threading.Event()

        def slow_algo(g, s, **kwargs):
            started.set()
            time.sleep(0.3)
            return _fake_layout(g.n)

        with LayoutEngine(
            graph_loader=_tiny_loader,
            algorithms={"slow": slow_algo},
            workers=1,
            timeout=0.05,
        ) as eng:
            req = LayoutRequest(graph="grid", algorithm="slow", s=4)
            with pytest.raises(RequestTimeout):
                eng.submit(req)
            assert started.wait(5)
            # The abandoned computation still completes and lands in the
            # cache; wait for the flight to drain, then retry.
            deadline = time.time() + 5
            while eng.inflight > 0 and time.time() < deadline:
                time.sleep(0.02)
            assert eng.inflight == 0
            resp = eng.submit(req)
            assert resp.cache_hit
            assert eng.stats()["counters"]["timeouts"] >= 1

    def test_compute_error_propagates(self):
        def broken(g, s, **kwargs):
            raise RuntimeError("boom")

        with LayoutEngine(
            graph_loader=_tiny_loader, algorithms={"broken": broken}
        ) as eng:
            from repro.service import ServiceError

            with pytest.raises(ServiceError, match="boom"):
                eng.submit(LayoutRequest(graph="grid", algorithm="broken"))
            # Failed computations are not cached; engine stays usable.
            assert eng.inflight == 0


class TestEngineValidation:
    def test_strict_engine_serves_and_validates(self):
        with LayoutEngine(graph_loader=_tiny_loader, validation="strict") as eng:
            resp = eng.submit(LayoutRequest(graph="grid", s=6))
            assert resp.status == "computed"
            # The policy was threaded into parhde (accepts `validate`).
            resp2 = eng.submit(LayoutRequest(graph="grid", s=6))
            assert resp2.cache_hit
            counters = eng.stats()["counters"]
            assert counters.get("validation_failures", 0) == 0

    def test_stale_cache_hit_fails_closed(self):
        g = grid2d(8, 8)
        with LayoutEngine(graph_loader=_tiny_loader, validation="strict") as eng:
            # Poison the cache: a foreign layout stored under the exact
            # fingerprint the request will look up (an epoch-bump bug).
            fp = layout_fingerprint(
                graph_digest(g), "parhde", {"s": 6, "seed": 0}, epoch=0
            )
            eng.cache.put(fp, _fake_layout(n=4))
            with pytest.raises(ValidationFailed, match="consistency"):
                eng.submit(LayoutRequest(graph=g, s=6))
            assert eng.stats()["counters"]["validation_failures"] == 1
            # Same engine without strictness would have served it.
            assert eng.stats()["counters"]["errors.invalid_layout"] == 1


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------


def _post(url: str, body: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        url + "/layout",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTP:
    @pytest.fixture()
    def server(self):
        eng = LayoutEngine(graph_loader=_tiny_loader, workers=2, timeout=30)
        srv = make_server(eng, port=0).start()
        yield srv
        srv.shutdown()
        eng.close()

    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz", timeout=10) as r:
            assert json.loads(r.read()) == {"status": "ok", "workers": 1}

    def test_layout_cold_then_hot(self, server):
        body = {"graph": "grid", "s": 6, "scale": "tiny"}
        status, cold = _post(server.url, body)
        assert status == 200
        assert cold["status"] == "computed"
        assert len(cold["coords"]) == cold["n"]
        status, warm = _post(server.url, body)
        assert status == 200
        assert warm["status"] == "memory-hit" and warm["cache_hit"]
        assert warm["fingerprint"] == cold["fingerprint"]
        with urllib.request.urlopen(server.url + "/stats", timeout=10) as r:
            stats = json.loads(r.read())
        assert stats["counters"]["cache_hits"] == 1
        assert stats["cache"]["hits"] == 1

    def test_stats_text_page(self, server):
        _post(server.url, {"graph": "grid", "s": 4})
        url = server.url + "/stats?format=text"
        with urllib.request.urlopen(url, timeout=10) as r:
            text = r.read().decode()
        assert "# counters" in text and "latency_seconds" in text

    def test_bad_requests(self, server):
        status, err = _post(server.url, {"graph": "nope"})
        assert status == 400 and err["error"] == "bad_request"
        status, err = _post(server.url, {})
        assert status == 400
        req = urllib.request.Request(
            server.url + "/layout", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_unknown_route(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert exc.value.code == 404

    def test_include_coords_false(self, server):
        status, resp = _post(
            server.url, {"graph": "grid", "s": 4, "include_coords": False}
        )
        assert status == 200 and "coords" not in resp


class TestErrorHygiene:
    """Internal failures must never echo exception text to the client."""

    @pytest.fixture()
    def broken_server(self):
        def broken(g, s, **kwargs):
            raise RuntimeError("secret-compute-detail /private/path")

        eng = LayoutEngine(
            graph_loader=_tiny_loader,
            algorithms={"broken": broken},
            timeout=30,
        )
        srv = make_server(eng, port=0).start()
        yield srv
        srv.shutdown()
        eng.close()

    def test_internal_500_is_generic_with_error_id(self, broken_server, caplog):
        import logging

        with caplog.at_level(logging.ERROR, logger="repro.service.http"):
            status, err = _post(
                broken_server.url, {"graph": "grid", "algorithm": "broken"}
            )
        assert status == 500
        assert err["error"] == "internal"
        body = json.dumps(err)
        assert "secret-compute-detail" not in body
        assert "RuntimeError" not in body
        assert "Traceback" not in body
        # The client gets an opaque id; the operator greps the log for it.
        assert err["error_id"] in err["message"]
        assert err["error_id"] in caplog.text
        assert "secret-compute-detail" in caplog.text
        # Operators alert on the counter, not on log scraping.
        snap = broken_server.engine.telemetry.snapshot()
        assert snap["counters"]["http.internal_errors"] == 1


# ---------------------------------------------------------------------------
# serialize round-trip regressions the disk tier depends on
# ---------------------------------------------------------------------------


class TestSerializeRegressions:
    def test_params_preserve_numeric_types(self, tmp_path):
        res = _fake_layout()
        res.params = {
            "s": np.int64(8),
            "tol": np.float64(0.25),
            "weighted": np.bool_(False),
            "offsets": np.array([1, 2, 3]),
            "name": "x",
        }
        p = tmp_path / "layout.npz"
        save_layout(res, p)
        back = load_layout(p)
        assert back.params["s"] == 8 and isinstance(back.params["s"], int)
        assert back.params["tol"] == 0.25
        assert isinstance(back.params["tol"], float)
        assert back.params["weighted"] is False
        assert back.params["offsets"] == [1, 2, 3]
        assert back.params["name"] == "x"

    def test_future_version_clear_error(self, tmp_path):
        res = _fake_layout()
        p = tmp_path / "layout.npz"
        save_layout(res, p)
        data = dict(np.load(p, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez_compressed(p, **data)
        with pytest.raises(ValueError, match="newer"):
            load_layout(p)

    def test_saved_then_loaded_then_served(self, tmp_path, tiny_mesh):
        """A CLI-saved archive is a valid disk-cache entry for the engine."""
        res = parhde(tiny_mesh, s=6, seed=0)
        fp = layout_fingerprint(tiny_mesh, "parhde", {"s": 6, "seed": 0})
        tier2 = tmp_path / "tier2"
        tier2.mkdir()
        save_layout(res, tier2 / f"{fp}.npz")

        cache = LayoutCache(max_bytes=10**9, disk_dir=tier2)
        with LayoutEngine(
            cache=cache,
            graph_loader=lambda name, scale, seed: tiny_mesh,
        ) as eng:
            resp = eng.submit(LayoutRequest(graph="mesh", s=6, seed=0))
            assert resp.status == "disk-hit"
            np.testing.assert_allclose(resp.result.coords, res.coords)
