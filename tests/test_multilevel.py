"""Tests for the multilevel coarsening framework and layout."""

import numpy as np
import pytest

from repro import parhde
from repro.graph import (
    from_edges,
    grid2d,
    is_connected,
    path_graph,
    random_integer_weights,
    star_graph,
)
from repro.metrics import principal_angles, sampled_stress
from repro.multilevel import (
    build_hierarchy,
    coarsen,
    contract,
    heavy_edge_matching,
    multilevel_layout,
    prolong,
)


class TestMatching:
    def test_is_matching(self, small_random):
        match = heavy_edge_matching(small_random, seed=0)
        # Involution: match[match[v]] == v.
        np.testing.assert_array_equal(match[match], np.arange(small_random.n))

    def test_matches_are_edges(self, small_random):
        match = heavy_edge_matching(small_random, seed=0)
        for v in range(small_random.n):
            if match[v] != v:
                assert small_random.has_edge(v, int(match[v]))

    def test_heavy_edges_preferred(self):
        # Star of 3 leaves with one heavy edge: the hub must pair with it.
        g = from_edges(4, [0, 0, 0], [1, 2, 3], weights=[1.0, 9.0, 1.0])
        match = heavy_edge_matching(g, seed=0)
        hub = 0 if match[0] != 0 else int(np.flatnonzero(match != np.arange(4))[0])
        # Whichever end initiated, 0-2 must be the matched pair.
        assert {0, 2} <= set(np.flatnonzero(match != np.arange(4)).tolist()) or match[0] == 2

    def test_matching_nontrivial(self, small_grid):
        match = heavy_edge_matching(small_grid, seed=1)
        matched = np.count_nonzero(match != np.arange(small_grid.n))
        assert matched >= small_grid.n // 2  # maximal matching on a grid


class TestContract:
    def test_halves_path(self):
        g = path_graph(16)
        lvl = coarsen(g, seed=0)
        assert lvl.graph.n < 16
        assert is_connected(lvl.graph)
        assert lvl.vertex_weights.sum() == 16

    def test_mapping_consistency(self, small_random):
        lvl = coarsen(small_random, seed=0)
        assert lvl.mapping.min() == 0
        assert lvl.mapping.max() == lvl.graph.n - 1
        # Every coarse vertex absorbs 1 or 2 fine vertices (a matching).
        assert set(np.unique(lvl.vertex_weights)) <= {1, 2}

    def test_edge_weights_accumulate(self):
        # Square 0-1-2-3; contract (0,1) and (2,3): the two cross edges
        # (1,2) and (3,0) become one coarse edge of weight 2.
        g = from_edges(4, [0, 1, 2, 3], [1, 2, 3, 0])
        match = np.array([1, 0, 3, 2])
        lvl = contract(g, match)
        assert lvl.graph.n == 2
        assert lvl.graph.m == 1
        assert lvl.graph.weights[0] == 2.0

    def test_preserves_connectivity(self, tiny_mesh):
        lvl = coarsen(tiny_mesh, seed=0)
        assert is_connected(lvl.graph)
        lvl.graph.validate()

    def test_weighted_input_conserves_weight(self, small_grid):
        g = random_integer_weights(small_grid, 1, 5, seed=0)
        match = heavy_edge_matching(g, seed=0)
        lvl = contract(g, match)
        lvl.graph.validate()
        # Total edge weight is conserved minus the contracted matching.
        matched_weight = 0.0
        for v in range(g.n):
            u = int(match[v])
            if u > v:
                i = int(np.searchsorted(g.neighbors(v), u))
                matched_weight += float(g.edge_weights_of(v)[i])
        fine_total = g.weights.sum() / 2
        coarse_total = lvl.graph.weights.sum() / 2
        assert coarse_total == pytest.approx(fine_total - matched_weight)

    def test_bad_matching_rejected(self, small_grid):
        with pytest.raises(ValueError):
            contract(small_grid, np.zeros(3, dtype=np.int64))


class TestHierarchy:
    def test_reaches_min_size(self, tiny_mesh):
        levels = build_hierarchy(tiny_mesh, min_size=50, seed=0)
        assert levels
        assert levels[-1].graph.n <= max(50, tiny_mesh.n // 2)
        sizes = [lvl.graph.n for lvl in levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_stalls_on_star(self):
        # A star has a maximum matching of one edge: coarsening stalls
        # instead of looping forever.
        g = star_graph(200)
        levels = build_hierarchy(g, min_size=10, max_levels=50, seed=0)
        assert len(levels) <= 50

    def test_small_graph_no_levels(self):
        g = path_graph(10)
        assert build_hierarchy(g, min_size=64) == []


class TestProlong:
    def test_copies_representative_coords(self, small_grid):
        lvl = coarsen(small_grid, seed=0)
        rng = np.random.default_rng(0)
        cc = rng.random((lvl.graph.n, 2))
        fine = prolong(cc, lvl, jitter=0.0)
        np.testing.assert_allclose(fine, cc[lvl.mapping])

    def test_jitter_separates_pairs(self, small_grid):
        lvl = coarsen(small_grid, seed=0)
        cc = np.zeros((lvl.graph.n, 2))
        fine = prolong(cc, lvl, jitter=1e-3, seed=1)
        assert len(np.unique(fine[:, 0])) > lvl.graph.n / 2


class TestMultilevelLayout:
    def test_end_to_end_quality(self, tiny_mesh):
        res = multilevel_layout(tiny_mesh, s=10, seed=0, refine_sweeps=20)
        assert res.coords.shape == (tiny_mesh.n, 2)
        assert np.all(np.isfinite(res.coords))
        rng = np.random.default_rng(0)
        rand = rng.standard_normal((tiny_mesh.n, 2))
        assert sampled_stress(tiny_mesh, res.coords, seed=1) < 0.6 * sampled_stress(
            tiny_mesh, rand, seed=1
        )

    def test_approximates_direct_layout(self, tiny_mesh):
        ml = multilevel_layout(tiny_mesh, s=10, seed=0, refine_sweeps=40)
        direct = parhde(tiny_mesh, s=10, seed=0)
        ang = principal_angles(
            ml.coords, direct.coords, tiny_mesh.weighted_degrees
        )
        assert ang[0] < 0.5

    def test_phases_recorded(self, tiny_mesh):
        res = multilevel_layout(tiny_mesh, s=8, seed=0)
        phases = res.layout.ledger.phases()
        assert "Coarsen" in phases
        assert "Refine" in phases

    def test_small_graph_degenerates_to_direct(self):
        g = grid2d(5, 6)
        res = multilevel_layout(g, s=6, seed=0, min_size=64)
        assert res.depth == 0
        assert res.coords.shape == (30, 2)

    def test_hierarchy_metadata(self, tiny_mesh):
        res = multilevel_layout(tiny_mesh, s=8, seed=0, min_size=40)
        assert res.level_sizes() == res.layout.params["levels"]
        assert res.depth == len(res.level_sizes())
