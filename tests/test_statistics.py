"""Tests for the graph characterization statistics."""

import numpy as np
import pytest

from repro.graph import (
    clustering_coefficient,
    complete_graph,
    cycle_graph,
    degree_statistics,
    format_stats_table,
    from_edges,
    graph_stats,
    grid2d,
    path_graph,
    star_graph,
)


class TestDegreeStatistics:
    def test_regular_graph(self):
        stats = degree_statistics(cycle_graph(10))
        assert stats["mean"] == 2.0
        assert stats["max"] == 2.0
        assert stats["skew"] == 1.0

    def test_star_skew(self):
        stats = degree_statistics(star_graph(11))
        assert stats["max"] == 10
        assert stats["skew"] == pytest.approx(10 / (20 / 11))

    def test_empty(self):
        stats = degree_statistics(from_edges(0, [], []))
        assert stats["mean"] == 0.0


class TestClusteringCoefficient:
    def test_complete_graph_is_one(self):
        assert clustering_coefficient(complete_graph(8)) == pytest.approx(1.0)

    def test_tree_is_zero(self):
        from repro.graph import binary_tree

        assert clustering_coefficient(binary_tree(4)) == 0.0

    def test_grid_is_zero(self):
        # 4-point grids have no triangles.
        assert clustering_coefficient(grid2d(8, 8)) == 0.0

    def test_triangle_chain(self):
        # Two triangles sharing a vertex: every vertex fully clustered
        # except the shared one.
        g = from_edges(5, [0, 1, 0, 2, 3, 2], [1, 2, 2, 3, 4, 4])
        c = clustering_coefficient(g, sample=5)
        assert 0.5 < c <= 1.0

    def test_sampling_deterministic(self, tiny_mesh):
        a = clustering_coefficient(tiny_mesh, sample=50, seed=2)
        b = clustering_coefficient(tiny_mesh, sample=50, seed=2)
        assert a == b

    def test_path_no_eligible(self):
        # Degree-1 endpoints skipped; interior vertices open.
        assert clustering_coefficient(path_graph(5)) == 0.0


class TestGraphStats:
    def test_summary_fields(self, tiny_mesh):
        s = graph_stats(tiny_mesh)
        assert s.n == tiny_mesh.n
        assert s.m == tiny_mesh.m
        assert s.avg_degree == pytest.approx(tiny_mesh.average_degree)
        assert s.diameter_lb > 10  # a mesh is wide
        assert 0 <= s.miss_rate <= 1
        assert s.clustering > 0.3  # triangulated

    def test_structural_contrast(self):
        from repro import datasets

        road = graph_stats(datasets.load("road", "tiny"))
        kron = graph_stats(datasets.load("kron", "tiny"))
        assert road.diameter_lb > 5 * kron.diameter_lb
        assert kron.degree_skew > 3 * road.degree_skew
        assert kron.miss_rate > road.miss_rate

    def test_format_table(self, tiny_mesh):
        text = format_stats_table([graph_stats(tiny_mesh)])
        assert "Graph" in text and "diam>=" in text
        assert tiny_mesh.name.split("[")[0] in text
