"""Tests for the scaled Table 2 evaluation collection."""

import pytest

from repro import datasets
from repro.graph import is_connected, miss_rate


def test_available_names():
    names = datasets.available()
    assert set(datasets.LARGE_FIVE) <= set(names)
    assert set(datasets.SMALL_FIVE) <= set(names)
    assert "barth" in names


@pytest.mark.parametrize("name", datasets.available())
def test_load_tiny_all(name):
    g = datasets.load(name, scale="tiny")
    g.validate()
    assert is_connected(g)
    assert g.n >= 50
    assert datasets.PAPER_NAMES[name] in g.name


def test_load_by_paper_name():
    g = datasets.load("road_usa", scale="tiny")
    assert "road_usa" in g.name


def test_unknown_name():
    with pytest.raises(KeyError, match="unknown graph"):
        datasets.load("nope")


def test_unknown_scale():
    with pytest.raises(ValueError, match="scale"):
        datasets.load("urand", scale="huge")


def test_scales_increase():
    tiny = datasets.load("ecology", "tiny")
    small = datasets.load("ecology", "small")
    assert small.n > tiny.n


def test_deterministic():
    import numpy as np

    a = datasets.load("kron", "tiny", seed=1)
    b = datasets.load("kron", "tiny", seed=1)
    np.testing.assert_array_equal(a.indices, b.indices)


def test_structural_characters():
    """The properties the evaluation depends on (DESIGN.md section 2)."""
    road = datasets.load("road", "small")
    urand = datasets.load("urand", "small")
    web = datasets.load("web", "small")
    kron = datasets.load("kron", "small")
    # road: sparse and high-diameter; urand: dense-ish, no locality.
    assert road.average_degree < 4 < urand.average_degree
    # locality ordering: web much friendlier than urand/kron.
    assert miss_rate(web) < 0.5 * miss_rate(urand)
    assert miss_rate(kron) > 0.5
    # kron: skewed degrees.
    assert kron.degrees.max() > 10 * kron.average_degree


def test_collection_table_and_format():
    rows = datasets.collection_table("tiny", names=("ecology", "road"))
    assert len(rows) == 2
    assert rows[0][0] == "ecology1"
    text = datasets.format_table2(rows)
    assert "Graph" in text and "ecology1" in text


def test_edge_count_ordering_mirrors_paper():
    """Table 2: urand > kron > web > twitter >> road by edge count."""
    ms = {
        name: datasets.load(name, "small").m
        for name in datasets.LARGE_FIVE
    }
    assert ms["urand"] > ms["kron"] > ms["road"]
    assert ms["web"] > ms["road"] and ms["twitter"] > ms["road"]
