"""Hypothesis property tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import is_connected, random_integer_weights
from repro.multilevel import coarsen
from repro.partition import balance, coordinate_bisection, edge_cut, fm_refine

from conftest import random_connected_graph


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 50),
    extra=st.integers(0, 60),
    seed=st.integers(0, 9999),
    k=st.integers(1, 5),
)
def test_coordinate_bisection_properties(n, extra, seed, k):
    """Property: any coordinates yield a full, near-balanced partition."""
    g = random_connected_graph(n, extra, seed)
    k = min(k, n)
    rng = np.random.default_rng(seed)
    coords = rng.standard_normal((n, 2))
    parts = coordinate_bisection(g, coords, k)
    assert parts.min() >= 0 and parts.max() == k - 1
    assert len(np.unique(parts)) == k
    sizes = np.bincount(parts, minlength=k)
    assert sizes.max() - sizes.min() <= max(2, k)  # proportional splits


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(6, 40),
    extra=st.integers(5, 60),
    seed=st.integers(0, 9999),
)
def test_fm_never_worsens_cut(n, extra, seed):
    """Property: FM refinement never increases the cut."""
    g = random_connected_graph(n, extra, seed)
    rng = np.random.default_rng(seed)
    parts = rng.integers(0, 2, size=n)
    refined, stats = fm_refine(g, parts, max_passes=3, balance_tol=0.3)
    assert stats.cut_after <= stats.cut_before + 1e-9
    assert edge_cut(g, refined) == pytest.approx(stats.cut_after)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(4, 60),
    extra=st.integers(0, 80),
    seed=st.integers(0, 9999),
    weighted=st.booleans(),
)
def test_coarsening_invariants(n, extra, seed, weighted):
    """Property: contraction preserves connectivity and absorbs all mass."""
    g = random_connected_graph(n, extra, seed)
    if weighted:
        g = random_integer_weights(g, 1, 9, seed=seed)
    lvl = coarsen(g, seed=seed)
    lvl.graph.validate()
    assert is_connected(lvl.graph)
    assert lvl.vertex_weights.sum() == n
    assert lvl.graph.n <= n
    # Mapping is onto the coarse id range.
    assert set(np.unique(lvl.mapping)) == set(range(lvl.graph.n))


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(6, 30),
    extra=st.integers(3, 40),
    seed=st.integers(0, 999),
)
def test_stress_majorization_monotone_property(n, extra, seed):
    """Property: the majorizer's objective never increases."""
    from repro.core.stress_majorization import stress_majorization

    g = random_connected_graph(n, extra, seed)
    rng = np.random.default_rng(seed)
    res = stress_majorization(
        g, rng.standard_normal((n, 2)), pivots=2, max_iter=12, tol=0.0,
        seed=seed,
    )
    hist = np.array(res.stress_history)
    assert np.all(np.diff(hist) <= 1e-9 * max(hist[0], 1.0))


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(8, 30),
    extra=st.integers(4, 40),
    seed=st.integers(0, 999),
)
def test_lobpcg_matches_dense_property(n, extra, seed):
    """Property: LOBPCG finds the true smallest generalized eigenvalue."""
    from repro.linalg import lobpcg

    g = random_connected_graph(n, extra, seed)
    res = lobpcg(g, 1, tol=1e-9, max_iter=300, seed=seed)
    A = np.zeros((n, n))
    for v in range(n):
        A[v, g.neighbors(v)] = 1.0
    d = A.sum(axis=1)
    Dm = np.diag(1.0 / np.sqrt(d))
    ref = np.sort(np.linalg.eigvalsh(Dm @ (np.diag(d) - A) @ Dm))
    np.testing.assert_allclose(res.eigenvalues[0], ref[1], atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 50),
    extra=st.integers(0, 60),
    seed=st.integers(0, 9999),
)
def test_bfs_parents_property(n, extra, seed):
    """Property: the recovered parent array is always a valid BFS tree."""
    from repro.bfs import bfs_parents, validate_bfs_tree

    g = random_connected_graph(n, extra, seed)
    src = seed % n
    dist, parent, _ = bfs_parents(g, src)
    validate_bfs_tree(g, src, dist, parent)
