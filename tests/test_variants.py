"""Tests for ParHDE execution variants (coupled pipeline, plain ortho)."""

import numpy as np
import pytest

from repro import parhde, parhde_coupled
from repro.core import laplacian_layout
from repro.parallel import BRIDGES_RSM


def test_coupled_matches_decoupled(tiny_mesh):
    a = parhde(tiny_mesh, s=10, seed=3, gs_method="mgs")
    b = parhde_coupled(tiny_mesh, s=10, seed=3)
    np.testing.assert_array_equal(a.pivots, b.pivots)
    np.testing.assert_allclose(a.coords, b.coords, atol=1e-8)


def test_coupled_phase_structure(tiny_mesh):
    res = parhde_coupled(tiny_mesh, s=8, seed=0)
    ph = res.phase_seconds(BRIDGES_RSM, 28)
    assert {"BFS", "DOrtho", "TripleProd", "Other"} <= set(ph)


def test_coupled_validation(tiny_mesh):
    with pytest.raises(ValueError):
        parhde_coupled(tiny_mesh, s=1, dims=2)


def test_coupled_disconnected_rejected():
    from repro.graph import from_edges

    g = from_edges(6, [0, 1, 3, 4], [1, 2, 4, 5])
    with pytest.raises(ValueError, match="connected"):
        parhde_coupled(g, s=3)


def test_laplacian_layout_is_plain_ortho(tiny_mesh):
    a = laplacian_layout(tiny_mesh, s=8, seed=1)
    b = parhde(tiny_mesh, s=8, seed=1, ortho="plain")
    np.testing.assert_allclose(a.coords, b.coords)
    assert a.params["ortho"] == "plain"


def test_plain_vs_d_ortho_similar_on_uniform_degrees(small_grid):
    """Section 4.5.1: for uniform degree distributions, the two variants
    give more or less identical drawings."""
    from repro.metrics import principal_angles

    a = parhde(small_grid, s=10, seed=0, ortho="D")
    b = parhde(small_grid, s=10, seed=0, ortho="plain")
    ang = principal_angles(a.coords, b.coords)
    assert ang[0] < 0.25
