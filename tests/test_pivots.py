"""Tests for pivot selection strategies."""

import numpy as np
import pytest

from repro.bfs import bfs_distances
from repro.core.pivots import random_pivots, select_and_traverse
from repro.parallel import Ledger


class TestKCenters:
    def test_farthest_first_property(self, small_grid):
        res = select_and_traverse(small_grid, 3, strategy="kcenters", seed=0)
        d0, _ = bfs_distances(small_grid, int(res.sources[0]))
        # Second pivot is a vertex at maximum distance from the first.
        assert d0[res.sources[1]] == d0.max()

    def test_pivots_distinct(self, small_random):
        res = select_and_traverse(small_random, 8, strategy="kcenters", seed=1)
        assert len(np.unique(res.sources)) == 8

    def test_distance_columns_correct(self, small_grid):
        res = select_and_traverse(small_grid, 4, strategy="kcenters", seed=2)
        for i, src in enumerate(res.sources):
            ref, _ = bfs_distances(small_grid, int(src))
            np.testing.assert_allclose(res.distances[:, i], ref.astype(float))

    def test_covers_extremes_of_path(self, path10):
        res = select_and_traverse(path10, 3, strategy="kcenters", seed=0)
        # Farthest-first on a path must pick both endpoints among the
        # first pivots after the random start.
        assert 0 in res.sources[:3] or 9 in res.sources[:3]

    def test_ledger_has_overhead_subphase(self, small_grid):
        led = Ledger()
        with led.phase("BFS"):
            select_and_traverse(small_grid, 3, seed=0, ledger=led)
        subs = led.subphase_totals("BFS")
        assert "traversal" in subs and "overhead" in subs

    def test_weighted_traversals(self, small_grid):
        from repro.graph import random_integer_weights

        g = random_integer_weights(small_grid, 1, 9, seed=0)
        res = select_and_traverse(g, 3, seed=0, weighted=True)
        assert np.all(np.isfinite(res.distances))
        from repro.sssp import dijkstra

        ref = dijkstra(g, int(res.sources[0]))
        np.testing.assert_allclose(res.distances[:, 0], ref)


class TestRandomPivots:
    def test_distinct_and_deterministic(self, small_random):
        a = random_pivots(small_random, 10, seed=4)
        b = random_pivots(small_random, 10, seed=4)
        np.testing.assert_array_equal(a, b)
        assert len(np.unique(a)) == 10

    def test_too_many_rejected(self, path10):
        with pytest.raises(ValueError):
            random_pivots(path10, 11)

    def test_strategies_same_distances(self, small_random):
        r1 = select_and_traverse(small_random, 5, strategy="random", seed=7)
        r2 = select_and_traverse(
            small_random, 5, strategy="random-concurrent", seed=7
        )
        np.testing.assert_array_equal(r1.sources, r2.sources)
        np.testing.assert_allclose(r1.distances, r2.distances)

    def test_concurrent_weighted_rejected(self, small_grid):
        from repro.graph import unit_weights

        g = unit_weights(small_grid)
        with pytest.raises(ValueError, match="unweighted"):
            select_and_traverse(
                g, 3, strategy="random-concurrent", weighted=True
            )


class TestValidation:
    def test_unknown_strategy(self, small_grid):
        with pytest.raises(ValueError, match="unknown strategy"):
            select_and_traverse(small_grid, 3, strategy="magic")

    def test_bad_s(self, small_grid):
        with pytest.raises(ValueError):
            select_and_traverse(small_grid, 0)
        with pytest.raises(ValueError):
            select_and_traverse(small_grid, small_grid.n + 1)
