# Convenience targets for the ParHDE reproduction.

PYTHON ?= python

.PHONY: install test bench bench-fast serve-smoke stream-smoke check-smoke chaos-smoke cluster-smoke lod-smoke kernels-smoke constraints-smoke wal-smoke examples results clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Boot the layout server on an ephemeral port, issue a layout + stats
# request, assert the second identical request is a cache hit, then
# update the graph and assert the cached layout misses.
serve-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/serve_smoke.py

# Dynamic-layout acceptance: a 32-edge delta on a 10k-vertex graph must
# repair incrementally with >= 5x fewer modeled BFS work units than a
# full relayout while matching its stress within 5%.
stream-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/stream_smoke.py

# Invariant-suite acceptance: every pipeline phase must satisfy its
# paper-stated invariant (strict thresholds, deep checks included) on a
# small dataset, and the fault-injection harness must catch every
# registered corruption.
check-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli check barth --scale small --strict
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli check barth --scale tiny --strict --weighted
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.cli check barth --scale tiny --inject all

# Resilience acceptance: walk the chaos failpoint matrix against a live
# resilient server — every injected fault (stalled/failing kernels,
# corrupted cache archives, failing disk writes, poisoned request keys)
# must produce a documented recovery (retry, degraded tier, quarantine,
# breaker short-circuit), never an unhandled error.
chaos-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/chaos_smoke.py

# Sharded-serving acceptance: boot `parhde serve --workers 2`, run a
# concurrent layout+update workload, SIGKILL one worker mid-stream, and
# require 100% request availability (reshard + retry on the survivor)
# plus an automatic restart that returns the cluster to full strength.
cluster-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/cluster_smoke.py

# progressive LOD: coarse first paint on a 150k-vertex graph, monotone
# tier convergence to "full" over HTTP polling, counters accounted.
lod-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/lod_smoke.py

# Batched-kernel acceptance: 10-source BFS on a >=100k-vertex random
# graph must return bitwise-identical distances via the frontier-matrix
# kernel while beating per-source by >=2x modeled and >=3x wall-clock.
kernels-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_kernels.py --quick

# Constrained-serving acceptance: over real HTTP, pin a vertex, POST a
# drag delta, and require the warm constrained relayout to hold the pin
# bitwise while costing >=3x less modeled BFS+solve work than cold.
constraints-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/constraints_smoke.py

# WAL durability acceptance: SIGKILL the worker that owns an updated
# graph mid-stream and require the respawned worker to replay its WAL
# and serve the post-update epoch bitwise-identically to an
# uninterrupted engine (zero stale responses); then corrupt a WAL tail
# and require truncate-at-last-valid-record recovery with the torn
# bytes quarantined and counted.
wal-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/wal_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-fast:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex /tmp/repro-examples || exit 1; done

results:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results __pycache__
	find . -name "__pycache__" -type d -exec rm -rf {} +
